//! Wall-clock performance report over the workload × model matrix.
//!
//! ```text
//! perf_report [--smoke] [--out BENCH_10.json] [--seed N] [--threads N]
//!             [--warmup N] [--repeat N] [--baseline BENCH_N.json]
//!             [--regress-pct P]
//! ```
//!
//! Times every suite workload on every accelerator model and writes the
//! per-job timings as JSON. Committed at the repo root as
//! `BENCH_<PR>.json`, these reports form the perf trajectory of the
//! codebase: compare the same cell across reports to see a kernel
//! change's effect on end-to-end suite time. Absolute numbers are
//! machine-dependent; the trajectory (and the within-report ratios
//! between models) is the signal.
//!
//! # Timing methodology (schema v2)
//!
//! Jobs run **sequentially** — never on the engine's worker pool — so a
//! cell's wall time is uncontended even when `--threads` asks the
//! simulations themselves for run-level parallelism. Each cell does
//! `--warmup` untimed simulations (page in the code and the allocator),
//! then reports the **minimum** over `--repeat` timed calls: the min is
//! the standard noise-rejecting statistic for a deterministic
//! computation, because scheduling interference only ever adds time.
//! The timed region is exactly one `Accelerator::simulate` call — no
//! cache-key hashing, metadata construction, or metrics cloning (the
//! overheads the engine's per-job stats include).
//!
//! # Thread-pool semantics
//!
//! `--threads N` sets the *run-level* pool (`isos_sim::threads`), which
//! parallelizes independent pipeline groups inside one simulation with a
//! fixed-order merge, so metrics are bit-identical at any count. The
//! request is capped at the machine's available cores: oversubscribed
//! workers cannot speed a run up, and on a small machine they would
//! poison the timings with contention. The engine-level pool (concurrent
//! jobs) is deliberately *not* used here.
//!
//! `--smoke` runs only the smallest workload (G58) so CI can validate
//! the schema in seconds without gating on timings.
//!
//! # Baseline comparison
//!
//! `--baseline BENCH_N.json` loads a prior report (v1 or v2) and prints
//! per-row speedup ratios (`baseline millis / new millis`) for every
//! matching `(workload, model)` cell, plus the geometric-mean speedup of
//! the `isosceles` rows. The exit status is non-zero if any `isosceles`
//! row regresses by more than `--regress-pct` percent (default 10), so
//! `scripts/check.sh` can use a smoke run as a perf-regression gate.

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use isos_nn::models::{paper_suite, suite_workload};
use isos_sim::threads::{available_cores, run_threads, set_run_threads};
use isosceles_bench::suite::SEED;
use isosceles_bench::trace::{accel_by_name, MODEL_NAMES};
use serde::{Deserialize, Serialize};

/// Schema tag stored in the report so downstream tooling can detect
/// incompatible layout changes. `v2` switched from engine-pool job
/// timings to sequential min-of-`--repeat` simulate-only timings.
pub const REPORT_SCHEMA: &str = "isosceles-perf-report/v2";

/// Default output path (repo root, named after this PR's bench file).
const DEFAULT_OUT: &str = "BENCH_10.json";

/// Untimed simulations per cell before measurement starts.
const DEFAULT_WARMUP: usize = 1;

/// Timed simulations per cell; the minimum is reported.
const DEFAULT_REPEAT: usize = 5;

/// Allowed slowdown on `isosceles` rows before `--baseline` fails.
const DEFAULT_REGRESS_PCT: f64 = 10.0;

/// The model whose rows the baseline gate and geomean apply to.
const GATED_MODEL: &str = "isosceles";

/// One timed `(workload, model)` simulation.
#[derive(Debug, Serialize, Deserialize)]
struct Timing {
    /// Suite workload id (e.g. `R81`).
    workload: String,
    /// Accelerator model name (e.g. `isosceles`).
    model: String,
    /// Minimum wall time of one simulation in milliseconds.
    millis: f64,
}

/// The full report as serialized to disk.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    /// Layout tag ([`REPORT_SCHEMA`]).
    schema: String,
    /// Sparsity-pattern seed the matrix ran with.
    seed: u64,
    /// Requested `--threads` value (run-level pool request).
    threads: usize,
    /// Effective run-level workers after the core-count cap — the pool
    /// size the simulations actually ran with. Metrics are bit-identical
    /// at any value; only wall-clock differs.
    effective_threads: usize,
    /// Whether this was a `--smoke` run (subset of workloads).
    smoke: bool,
    /// Untimed warmup simulations per cell.
    warmup: usize,
    /// Timed simulations per cell (minimum reported).
    repeats: usize,
    /// Per-job wall-clock timings, workload-major in suite order.
    timings: Vec<Timing>,
    /// End-to-end wall time of the whole matrix in milliseconds
    /// (warmups and repeats included).
    total_millis: f64,
}

/// A prior report's timings, keyed by `(workload, model)`.
///
/// Parsed from the JSON tree rather than a typed struct so both v1
/// (engine timings) and v2 (min-of-k) layouts load; only `schema` and
/// the `timings` rows are required.
struct Baseline {
    schema: String,
    rows: Vec<(String, String, f64)>,
}

/// Loads a baseline report.
///
/// # Errors
///
/// Errors on unreadable files, malformed JSON, or a missing/foreign
/// schema tag.
fn load_baseline(path: &PathBuf) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let root = serde::json::parse(&text).map_err(|e| e.to_string())?;
    let schema = root
        .field("schema")
        .ok()
        .and_then(|v| v.as_str())
        .ok_or("missing schema tag")?
        .to_string();
    if !schema.starts_with("isosceles-perf-report/") {
        return Err(format!("not a perf report: schema `{schema}`"));
    }
    let timings = root.field("timings").map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    let mut i = 0;
    while let Ok(row) = timings.index(i) {
        let get = |name: &str| {
            row.field(name)
                .ok()
                .and_then(|v| v.as_str())
                .map(str::to_string)
        };
        let millis = row
            .field("millis")
            .and_then(|v| v.as_f64())
            .map_err(|e| format!("row {i}: {e}"))?;
        match (get("workload"), get("model")) {
            (Some(w), Some(m)) => rows.push((w, m, millis)),
            _ => return Err(format!("row {i}: missing workload/model")),
        }
        i += 1;
    }
    Ok(Baseline { schema, rows })
}

/// Compares `report` against `baseline` row by row.
///
/// Prints a speedup table and the `isosceles` geomean; returns the rows
/// (workload ids) whose `isosceles` timing regressed past `regress_pct`.
fn compare(report: &Report, baseline: &Baseline, regress_pct: f64) -> Vec<String> {
    let limit = 1.0 + regress_pct / 100.0;
    let mut regressed = Vec::new();
    let mut log_sum = 0.0;
    let mut gated = 0usize;
    eprintln!("workload        model      baseline      new  speedup");
    for t in &report.timings {
        let base = baseline
            .rows
            .iter()
            .find(|(w, m, _)| *w == t.workload && *m == t.model);
        let Some((_, _, base_ms)) = base else {
            eprintln!(
                "{:<10} {:>12} {:>9} {:>8.3}        —",
                t.workload, t.model, "—", t.millis
            );
            continue;
        };
        let speedup = base_ms / t.millis;
        let flag = if t.model == GATED_MODEL && t.millis > base_ms * limit {
            regressed.push(t.workload.clone());
            "  REGRESSED"
        } else {
            ""
        };
        eprintln!(
            "{:<10} {:>12} {:>9.3} {:>8.3} {:>7.2}x{flag}",
            t.workload, t.model, base_ms, t.millis, speedup
        );
        if t.model == GATED_MODEL {
            log_sum += speedup.ln();
            gated += 1;
        }
    }
    if gated > 0 {
        eprintln!(
            "geomean speedup ({GATED_MODEL}, {gated} rows) vs {}: {:.2}x",
            baseline.schema,
            (log_sum / gated as f64).exp()
        );
    }
    regressed
}

/// Prints usage to stderr and exits with status 2.
fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: perf_report [--smoke] [--out PATH] [--seed N] [--threads N]\n\
         \x20                  [--warmup N] [--repeat N] [--baseline PATH] [--regress-pct P]\n\
         \n\
         --smoke          time only G58 (schema check; not a perf baseline)\n\
         --out PATH       output JSON path (default {DEFAULT_OUT})\n\
         --seed N         sparsity-pattern seed (default {SEED})\n\
         --threads N      run-level workers inside each simulation, capped at the\n\
         \x20                machine's cores (default: ISOS_THREADS, else 1). Jobs\n\
         \x20                themselves always run sequentially so timings are\n\
         \x20                uncontended; the engine-level job pool is not used.\n\
         --warmup N       untimed simulations per cell (default {DEFAULT_WARMUP})\n\
         --repeat N       timed simulations per cell, min reported (default {DEFAULT_REPEAT})\n\
         --baseline PATH  compare against a prior report; exit 1 if any\n\
         \x20                `{GATED_MODEL}` row slows down more than --regress-pct\n\
         --regress-pct P  allowed `{GATED_MODEL}` slowdown percent (default {DEFAULT_REGRESS_PCT})"
    );
    exit(2);
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from(DEFAULT_OUT);
    let mut seed = SEED;
    let mut requested_threads: Option<usize> = None;
    let mut warmup = DEFAULT_WARMUP;
    let mut repeats = DEFAULT_REPEAT;
    let mut baseline_path: Option<PathBuf> = None;
    let mut regress_pct = DEFAULT_REGRESS_PCT;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => usage("--out needs a value"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => usage("--seed needs an integer"),
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                // Cap at real cores: extra workers cannot make a run
                // faster, and on a small machine they would poison the
                // timings with contention. Results are identical either
                // way (the pool is bit-deterministic in worker count).
                Some(n) if n >= 1 => {
                    requested_threads = Some(n);
                    set_run_threads(n.min(available_cores()));
                }
                _ => usage("--threads needs a positive integer"),
            },
            "--warmup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => warmup = n,
                None => usage("--warmup needs an integer"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => repeats = n,
                _ => usage("--repeat needs a positive integer"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => usage("--baseline needs a path"),
            },
            "--regress-pct" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if p >= 0.0 => regress_pct = p,
                _ => usage("--regress-pct needs a non-negative number"),
            },
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let baseline = baseline_path.map(|p| match load_baseline(&p) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_report: baseline {}: {e}", p.display());
            exit(2);
        }
    });

    let workloads = if smoke {
        vec![suite_workload("G58", seed)]
    } else {
        paper_suite(seed)
    };
    let models: Vec<_> = MODEL_NAMES
        .iter()
        .map(|name| accel_by_name(name).expect("model table entry resolves"))
        .collect();

    eprintln!(
        "perf_report: timing {} workloads x {} models sequentially \
         (warmup {warmup}, min of {repeats}, {} run-level threads)",
        workloads.len(),
        models.len(),
        run_threads()
    );

    let wall = Instant::now();
    let mut timings = Vec::with_capacity(workloads.len() * models.len());
    for w in &workloads {
        for accel in &models {
            for _ in 0..warmup {
                std::hint::black_box(accel.simulate(&w.network, seed));
            }
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let t = Instant::now();
                std::hint::black_box(accel.simulate(&w.network, seed));
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            timings.push(Timing {
                workload: w.id.to_string(),
                model: accel.name().to_string(),
                millis: best,
            });
        }
    }
    let report = Report {
        schema: REPORT_SCHEMA.to_string(),
        seed,
        threads: requested_threads.unwrap_or_else(run_threads),
        effective_threads: run_threads(),
        smoke,
        warmup,
        repeats,
        timings,
        total_millis: wall.elapsed().as_secs_f64() * 1e3,
    };

    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("perf_report: cannot create {}: {e}", dir.display());
            exit(1);
        }
    }
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("perf_report: cannot write {}: {e}", out.display());
        exit(1);
    }
    eprintln!(
        "perf_report: wrote {} ({} timings, {:.0} ms total)",
        out.display(),
        report.timings.len(),
        report.total_millis
    );

    if let Some(b) = baseline {
        let regressed = compare(&report, &b, regress_pct);
        if !regressed.is_empty() {
            eprintln!(
                "perf_report: {} {GATED_MODEL} row(s) regressed >{regress_pct}%: {}",
                regressed.len(),
                regressed.join(", ")
            );
            exit(1);
        }
    }
}
