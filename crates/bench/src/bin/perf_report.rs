//! Wall-clock performance report over the workload × model matrix.
//!
//! ```text
//! perf_report [--smoke] [--out BENCH_5.json] [--seed N] [--threads N]
//! ```
//!
//! Times every suite workload on every accelerator model through the
//! shared [`SuiteEngine`] with the result cache *disabled*, so every
//! job's `millis` is a real simulation, and writes the per-job timings as
//! JSON. Committed at the repo root as `BENCH_<PR>.json`, these reports
//! form the perf trajectory of the codebase: compare the same cell across
//! reports to see a kernel change's effect on end-to-end suite time.
//! Absolute numbers are machine-dependent; the trajectory (and the
//! within-report ratios between models) is the signal.
//!
//! `--smoke` runs only the smallest workload (G58) so CI can validate the
//! schema in seconds without gating on timings.

use std::path::PathBuf;
use std::process::exit;

use isos_nn::models::{paper_suite, suite_workload};
use isosceles_bench::engine::{EngineOptions, SuiteEngine};
use isosceles_bench::suite::SEED;
use isosceles_bench::trace::{accel_by_name, MODEL_NAMES};
use serde::{Deserialize, Serialize};

/// Schema tag stored in the report so downstream tooling can detect
/// incompatible layout changes.
pub const REPORT_SCHEMA: &str = "isosceles-perf-report/v1";

/// Default output path (repo root, named after this PR's bench file).
const DEFAULT_OUT: &str = "BENCH_5.json";

/// One timed `(workload, model)` simulation.
#[derive(Debug, Serialize, Deserialize)]
struct Timing {
    /// Suite workload id (e.g. `R81`).
    workload: String,
    /// Accelerator model name (e.g. `isosceles`).
    model: String,
    /// Wall time of the simulation in milliseconds.
    millis: f64,
}

/// The full report as serialized to disk.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    /// Layout tag ([`REPORT_SCHEMA`]).
    schema: String,
    /// Sparsity-pattern seed the matrix ran with.
    seed: u64,
    /// Worker threads used (timings of parallel jobs share cores).
    threads: usize,
    /// Whether this was a `--smoke` run (subset of workloads).
    smoke: bool,
    /// Per-job wall-clock timings, workload-major in suite order.
    timings: Vec<Timing>,
    /// End-to-end wall time of the whole matrix in milliseconds.
    total_millis: f64,
}

/// Prints usage to stderr and exits with status 2.
fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: perf_report [--smoke] [--out PATH] [--seed N] [--threads N]\n\
         \n\
         --smoke       time only G58 (schema check; not a perf baseline)\n\
         --out PATH    output JSON path (default {DEFAULT_OUT})\n\
         --seed N      sparsity-pattern seed (default {SEED})\n\
         --threads N   worker threads (default: all cores)"
    );
    exit(2);
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from(DEFAULT_OUT);
    let mut seed = SEED;
    // Flags shared with the engine (--threads) are parsed by both; the
    // engine ignores what it does not know.
    let mut opts = EngineOptions::from_env();
    opts.use_cache = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out = PathBuf::from(v),
                None => usage("--out needs a value"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => usage("--seed needs an integer"),
            },
            "--threads" => {
                // Already consumed by EngineOptions::from_env; skip the value.
                it.next();
            }
            "--no-cache" => {}
            "--help" | "-h" => usage("help requested"),
            other if other.starts_with("--threads=") => {}
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let workloads = if smoke {
        vec![suite_workload("G58", seed)]
    } else {
        paper_suite(seed)
    };
    let models: Vec<_> = MODEL_NAMES
        .iter()
        .map(|name| accel_by_name(name).expect("model table entry resolves"))
        .collect();
    let accel_refs: Vec<&dyn isosceles::accel::Accelerator> =
        models.iter().map(AsRef::as_ref).collect();

    eprintln!(
        "perf_report: timing {} workloads x {} models (cache disabled, {} threads)",
        workloads.len(),
        accel_refs.len(),
        opts.threads
    );
    let engine = SuiteEngine::new(opts);
    let (_, stats) = engine.run_matrix(&workloads, &accel_refs, seed);

    // run_matrix records jobs workload-major in matrix order.
    let timings: Vec<Timing> = stats
        .jobs
        .iter()
        .map(|j| {
            assert!(!j.cache_hit, "perf_report must run with the cache off");
            Timing {
                workload: j.workload.as_str().to_string(),
                model: j.accel.clone(),
                millis: j.millis,
            }
        })
        .collect();
    let report = Report {
        schema: REPORT_SCHEMA.to_string(),
        seed,
        threads: stats.threads,
        smoke,
        timings,
        total_millis: stats.wall_millis,
    };

    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("perf_report: cannot create {}: {e}", dir.display());
            exit(1);
        }
    }
    if let Err(e) = std::fs::write(&out, serde::json::to_string(&report)) {
        eprintln!("perf_report: cannot write {}: {e}", out.display());
        exit(1);
    }
    eprintln!(
        "perf_report: wrote {} ({} timings, {:.0} ms total)",
        out.display(),
        report.timings.len(),
        report.total_millis
    );
}
