//! Exports the full evaluation as CSV files under `results/`, one per
//! paper figure, for external plotting.

use isos_sim::energy::{energy_of, EnergyParams};
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::report::{CsvTable, Report};
use isosceles_bench::suite::SEED;
use std::path::Path;

fn main() {
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    let dir = Path::new("results");

    let report = Report::new(rows);
    for path in report.write_all(dir).expect("write report tables") {
        println!("wrote {}", path.display());
    }
    let rows = report.rows;

    let mut fig14a = CsvTable::new(&["net", "sparten_speedup", "isosceles_speedup"]);
    let mut fig14b = CsvTable::new(&["net", "fused_cycles", "sparten_cycles", "isosceles_cycles"]);
    let mut fig14c = CsvTable::new(&[
        "net",
        "fused_w",
        "fused_a",
        "sparten_w",
        "sparten_a",
        "isos_w",
        "isos_a",
    ]);
    let mut fig15 = CsvTable::new(&["net", "fused_bw", "sparten_bw", "isosceles_bw"]);
    let mut fig16 = CsvTable::new(&["net", "fused_mac", "sparten_mac", "isosceles_mac"]);
    let mut fig17 = CsvTable::new(&["net", "dram_mj", "sram_mj", "compute_mj", "other_mj"]);

    let params = EnergyParams::default();
    for r in &rows {
        let f = r.fused.total.total_traffic();
        fig14a.push_row(vec![
            r.id.to_string(),
            format!("{:.3}", r.sparten_speedup_vs_fused()),
            format!("{:.3}", r.speedup_vs_fused()),
        ]);
        fig14b.push_row(vec![
            r.id.to_string(),
            r.fused.total.cycles.to_string(),
            r.sparten.total.cycles.to_string(),
            r.isosceles.total.cycles.to_string(),
        ]);
        fig14c.push_row(vec![
            r.id.to_string(),
            format!("{:.4}", r.fused.total.weight_traffic / f),
            format!("{:.4}", r.fused.total.act_traffic / f),
            format!("{:.4}", r.sparten.total.weight_traffic / f),
            format!("{:.4}", r.sparten.total.act_traffic / f),
            format!("{:.4}", r.isosceles.total.weight_traffic / f),
            format!("{:.4}", r.isosceles.total.act_traffic / f),
        ]);
        fig15.push_row(vec![
            r.id.to_string(),
            format!("{:.3}", r.fused.total.bw_util.ratio()),
            format!("{:.3}", r.sparten.total.bw_util.ratio()),
            format!("{:.3}", r.isosceles.total.bw_util.ratio()),
        ]);
        fig16.push_row(vec![
            r.id.to_string(),
            format!("{:.3}", r.fused.total.mac_util.ratio()),
            format!("{:.3}", r.sparten.total.mac_util.ratio()),
            format!("{:.3}", r.isosceles.total.mac_util.ratio()),
        ]);
        let e = energy_of(&r.isosceles.total.activity, &params);
        fig17.push_row(vec![
            r.id.to_string(),
            format!("{:.4}", e.dram_mj),
            format!("{:.4}", e.sram_mj),
            format!("{:.4}", e.compute_mj),
            format!("{:.4}", e.other_mj),
        ]);
    }

    for (name, table) in [
        ("fig14a_speedup", &fig14a),
        ("fig14b_cycles", &fig14b),
        ("fig14c_traffic", &fig14c),
        ("fig15_bandwidth", &fig15),
        ("fig16_mac_util", &fig16),
        ("fig17_energy", &fig17),
    ] {
        let path = table.write(dir, name).expect("write CSV");
        println!("wrote {} ({} rows)", path.display(), table.len());
    }
}
