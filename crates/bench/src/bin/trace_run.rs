//! Trace one suite workload on one accelerator model end to end and
//! export the timeline.
//!
//! ```text
//! trace_run [--net R81] [--model isosceles] [--out results/traces] [--seed N]
//! ```
//!
//! Writes `<net>-<model>.trace.json` (open at <https://ui.perfetto.dev>),
//! `<net>-<model>.timeline.csv`, and `<net>-<model>.stalls.md` under the
//! output directory, prints the written paths plus the per-unit stall
//! table, and verifies on the way out that the traced metrics match an
//! untraced run. Bad flags print usage to stderr and exit with status 2.

use std::path::PathBuf;
use std::process::exit;

use isos_nn::models::{suite_workload, try_suite_workload, SUITE_IDS};
use isosceles_bench::suite::SEED;
use isosceles_bench::trace::{accel_by_name, trace_workload, MODEL_NAMES, TRACE_DIR};

/// Prints usage to stderr and exits with status 2.
fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: trace_run [--net ID] [--model NAME] [--out DIR] [--seed N]\n\
         \n\
         --net ID      suite workload id (default R81); one of {}\n\
         --model NAME  accelerator model (default isosceles); one of\n\
         \u{20}             {} (aliases: single, fused)\n\
         --out DIR     output directory (default {TRACE_DIR})\n\
         --seed N      sparsity-pattern seed (default {SEED})",
        SUITE_IDS.join(", "),
        MODEL_NAMES.join(", "),
    );
    exit(2);
}

fn main() {
    let mut net = "R81".to_string();
    let mut model = "isosceles".to_string();
    let mut out = PathBuf::from(TRACE_DIR);
    let mut seed = SEED;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| match it.next() {
            Some(v) => v.clone(),
            None => usage(&format!("{name} needs a value")),
        };
        match arg.as_str() {
            "--net" => net = value("--net"),
            "--model" => model = value("--model"),
            "--out" => out = PathBuf::from(value("--out")),
            "--seed" => match value("--seed").parse() {
                Ok(n) => seed = n,
                Err(_) => usage("--seed needs an integer"),
            },
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    if try_suite_workload(&net, seed).is_none() {
        usage(&format!("unknown workload id {net}"));
    }
    let Some(accel) = accel_by_name(&model) else {
        usage(&format!("unknown model {model}"));
    };

    let workload = suite_workload(&net, seed);
    let run = trace_workload(&workload, accel.as_ref(), seed);
    let untraced = accel.simulate(&workload.network, seed);
    assert_eq!(
        run.metrics, untraced,
        "traced metrics diverged from untraced run"
    );

    let paths = match run.export_all(&out) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot write traces under {}: {e}", out.display());
            exit(1);
        }
    };
    println!(
        "{}/{}: {} cycles, {} units, {} events",
        run.model,
        run.workload,
        run.metrics.total.cycles,
        run.buffer.units().len(),
        run.buffer.len()
    );
    for p in &paths {
        println!("wrote {}", p.display());
    }
    println!();
    print!(
        "{}",
        isos_trace::export::stall_summary_md(&run.buffer, &run.title())
    );
}
