//! Ablation sweeps over ISOSceles's design choices (beyond the paper's
//! own figures): dynamic-scheduler interval, lane count, context count,
//! filter-buffer size, and queue depth — the knobs Sec. IV motivates.
//!
//! Run on R96 (the paper's focus workload) and M75 (the pipelining-
//! friendliest one).

use isos_nn::graph::Network;
use isos_nn::models::{mobilenet_v1, resnet50};
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;
use isosceles_bench::suite::SEED;

fn row(net: &Network, cfg: &IsoscelesConfig) -> (u64, f64, f64) {
    let r = cfg.simulate(net, SEED);
    (
        r.total.cycles,
        r.total.total_traffic() / 1e6,
        r.total.mac_util.ratio(),
    )
}

fn main() {
    let r96 = resnet50(0.96, SEED);
    let m75 = mobilenet_v1(0.75, SEED);
    let nets: [(&str, &Network); 2] = [("R96", &r96), ("M75", &m75)];

    println!("# Ablation 1: dynamic scheduler interval (paper: 100 cycles)");
    println!(
        "{:<10} {:>12} {:>10} {:>8}",
        "interval", "cycles", "MB", "mac%"
    );
    for net in nets {
        for interval in [10u64, 50, 100, 500, 2000] {
            let cfg = IsoscelesConfig {
                scheduler_interval: interval,
                ..Default::default()
            };
            let (c, t, u) = row(net.1, &cfg);
            println!(
                "{:<4} {:<5} {:>12} {:>10.1} {:>7.0}%",
                net.0,
                interval,
                c,
                t,
                u * 100.0
            );
        }
    }

    println!();
    println!("# Ablation 2: lane count (paper: 64), MACs held at 4096");
    for net in nets {
        for lanes in [16usize, 32, 64, 128] {
            let cfg = IsoscelesConfig {
                lanes,
                macs_per_lane: 4096 / lanes,
                ..Default::default()
            };
            let (c, t, u) = row(net.1, &cfg);
            println!(
                "{:<4} lanes={:<4} {:>12} {:>10.1} {:>7.0}%",
                net.0,
                lanes,
                c,
                t,
                u * 100.0
            );
        }
    }

    println!();
    println!("# Ablation 3: time-multiplexing contexts (paper: 2-16)");
    for net in nets {
        for contexts in [2usize, 4, 8, 16] {
            let cfg = IsoscelesConfig {
                max_contexts: contexts,
                ..Default::default()
            };
            let (c, t, u) = row(net.1, &cfg);
            println!(
                "{:<4} contexts={:<3} {:>12} {:>10.1} {:>7.0}%",
                net.0,
                contexts,
                c,
                t,
                u * 100.0
            );
        }
    }

    println!();
    println!("# Ablation 4: filter buffer size (paper: 1 MB)");
    for net in nets {
        for kb in [256u64, 512, 1024, 2048, 4096] {
            let cfg = IsoscelesConfig {
                filter_buffer_bytes: kb << 10,
                ..Default::default()
            };
            let (c, t, u) = row(net.1, &cfg);
            println!(
                "{:<4} fb={:<5}KB {:>12} {:>10.1} {:>7.0}%",
                net.0,
                kb,
                c,
                t,
                u * 100.0
            );
        }
    }

    println!();
    println!("# Ablation 5: per-lane queue budget (paper: 8 KB)");
    for net in nets {
        for kb in [2u64, 8, 32] {
            let cfg = IsoscelesConfig {
                queue_bytes_per_lane: kb << 10,
                ..Default::default()
            };
            let (c, t, u) = row(net.1, &cfg);
            println!(
                "{:<4} q={:<4}KB {:>12} {:>10.1} {:>7.0}%",
                net.0,
                kb,
                c,
                t,
                u * 100.0
            );
        }
    }

    println!();
    println!("# Observations expected from the paper's arguments:");
    println!("#  - tiny scheduler intervals barely help; huge ones cost utilization");
    println!("#  - larger filter buffers let sparser groups pipeline deeper (less traffic)");
    println!("#  - fewer contexts force shallower pipelines (more traffic)");
}
