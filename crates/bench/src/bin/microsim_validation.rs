//! Cross-validation: the element-granular *fully spatial* simulator vs
//! the time-multiplexed interval model, on matched small pipelines.
//!
//! The spatial design gives each of the 3 layers its own IS-OS block (3x
//! the MACs), so at compute-bound densities the time-multiplexed machine
//! should take ~3x its cycles; as sparsity grows, the spatial design's
//! utilization collapses (Sec. IV-B's motivation for time-multiplexing)
//! and the gap narrows toward fill/drain and preload overheads.

use isos_nn::graph::Network;
use isos_nn::layer::{ActShape, Layer, LayerKind};
use isos_tensor::{gen, Csf};
use isosceles::accel::Accelerator;
use isosceles::arch::{build_chain, simulate_micro};
use isosceles::IsoscelesConfig;

fn main() {
    let cfg = IsoscelesConfig {
        lanes: 32,
        macs_per_lane: 32,
        ..Default::default()
    };
    println!("# Spatial (element-level, 3 blocks) vs time-multiplexed (interval, 1 block)");
    println!("# 3-layer 24x32x8 pipeline; expected ratio ~3x when compute-bound");
    println!(
        "{:<10} {:>12} {:>14} {:>8} {:>12}",
        "density", "spatial cyc", "timemux cyc", "ratio", "spatial mac%"
    );
    for density in [0.8, 0.5, 0.25, 0.1] {
        // Real tensors for the micro model.
        let input = gen::random_csf(vec![24, 32, 8].into(), density, 1);
        let filters: Vec<(Csf, usize, usize)> = (0..3)
            .map(|i| (gen::random_csf(vec![8, 3, 8, 3].into(), 0.4, 50 + i), 1, 1))
            .collect();
        let chain = build_chain(input.clone(), &filters);
        let micro = simulate_micro(&chain, &cfg);

        // A statistical twin for the interval model: same shapes, same
        // measured densities.
        let mut net = Network::new("twin");
        let mut prev: Option<usize> = None;
        for (i, layer) in chain.iter().enumerate() {
            let d = layer.input.shape().dims();
            let l = Layer::new(
                &format!("c{i}"),
                LayerKind::Conv {
                    r: 3,
                    s: 3,
                    stride: 1,
                    pad: 1,
                },
                ActShape::new(d[0], d[1], d[2]),
                8,
            )
            .with_weight_density(layer.filter.density())
            .with_act_density(
                layer.input.density(),
                chain
                    .get(i + 1)
                    .map_or(layer.input.density(), |next| next.input.density()),
            );
            let inputs: Vec<usize> = prev.into_iter().collect();
            prev = Some(net.add(l, &inputs));
        }
        let interval = cfg.simulate(&net, 9);

        let ratio = interval.total.cycles as f64 / micro.cycles as f64;
        println!(
            "{:<10.2} {:>12} {:>14} {:>8.2} {:>11.0}%",
            density,
            micro.cycles,
            interval.total.cycles,
            ratio,
            micro.mac_utilization * 100.0
        );
    }
    println!();
    println!("# Spatial utilization falling with sparsity reproduces Sec. IV-B's");
    println!("# motivation for time-multiplexing; ratios <= ~3x + preload overhead");
    println!("# validate the interval abstraction used for every figure.");
}
