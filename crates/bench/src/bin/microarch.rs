//! Microarchitecture ablations for the component models of Sec. IV-A/B:
//! coarse-grain PE packing vs fixed-S PEs, filter-buffer coalescing, and
//! the fetcher byte schedule.

use isos_nn::models::resnet50;
use isos_tensor::{gen, Coord};
use isosceles::arch::fetcher::arrival_schedule;
use isosceles::arch::filter_buffer::FilterBuffer;
use isosceles::arch::pe::{fixed_s_efficiency, CoarsePe, WeightOp};
use isosceles_bench::suite::SEED;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- PE packing: coarse-grain vs fixed-S across the kernel mix. ---
    println!("# PE design: MAC packing efficiency by layer kernel width S");
    println!(
        "{:<8} {:>14} {:>18}",
        "S", "fixed-S=5 PE", "coarse 8-wide PE"
    );
    let mut rng = SmallRng::seed_from_u64(SEED);
    for s in [1usize, 3, 5] {
        // Simulate a coarse PE fed with realistic compressed vectors: the
        // filter fetcher sends nnz(F_c) weights per input, spanning r/k.
        let mut pe = CoarsePe::new(8);
        for _ in 0..2000 {
            let nnz = rng.gen_range(1..=(s * 16));
            let vector: Vec<WeightOp> = (0..nnz)
                .map(|i| WeightOp {
                    r: (i % 3) as u16,
                    k: (i / 3) as u16,
                    s: (i % s) as u16,
                    value: 1.0,
                })
                .collect();
            pe.issue(1.0, &vector);
        }
        println!(
            "{:<8} {:>13.0}% {:>17.0}%",
            s,
            fixed_s_efficiency(5, s) * 100.0,
            pe.stats().packing_efficiency() * 100.0
        );
    }
    println!("# paper: an S=1 layer on an S=5 PE idles 80% of MACs; coarse-grain");
    println!("#        PEs keep packing high regardless of S (Sec. IV-B)\n");

    // --- Filter buffer: coalescing and banking under lane contention. ---
    println!("# Filter buffer: serving 64 lanes/cycle (R96 layer2.1.conv2 filter)");
    let net = resnet50(0.96, SEED);
    let layer = net
        .nodes()
        .iter()
        .find(|n| n.layer.name == "layer2.1.conv2")
        .unwrap();
    let filter = gen::random_csf(
        vec![layer.layer.input.c, 3, layer.layer.output.c, 3].into(),
        layer.layer.weight_density,
        SEED,
    );
    for (label, spread) in [
        ("lockstep lanes (same channel)", 1u32),
        ("skewed lanes", 64),
    ] {
        let mut fb = FilterBuffer::new(1 << 20, 64, 32);
        let alloc = fb.load(&filter, 1.5).expect("fits");
        let mut cycles = 0u64;
        let mut coalesced = 0u64;
        let mut rng = SmallRng::seed_from_u64(SEED + spread as u64);
        for step in 0..1000u32 {
            let lanes: Vec<Coord> = (0..64)
                .map(|_| (step + rng.gen_range(0..spread)) % layer.layer.input.c as u32)
                .collect();
            let r = fb.serve(&alloc, &lanes);
            cycles += r.cycles;
            coalesced += r.coalesced;
        }
        println!(
            "  {label:<30} {cycles:>6} SRAM cycles / 1000 issue cycles, {coalesced} coalesced"
        );
    }
    println!("# paper: wide words + banking + request coalescing make one shared");
    println!("#        buffer sustain all lanes (Sec. IV-A)\n");

    // --- Fetcher: the byte schedule of one activation row. ---
    println!("# Fetcher FSM: arrival schedule of one 56-wide activation row");
    let acts = gen::random_csf(vec![56, 56, 64].into(), 0.5, SEED);
    for bw in [2.0f64, 8.0] {
        let sched = arrival_schedule(&acts, 28, bw);
        let last = sched.last().map(|&(_, c)| c).unwrap_or(0);
        println!(
            "  {:>4} B/cycle/lane: {} elements over {} cycles",
            bw,
            sched.len(),
            last
        );
    }
    println!("# decoupling queues absorb this schedule so lanes never see DRAM latency");
}
