//! Figure 13: mapping a ResNet block onto ISOSceles's programmable
//! interconnect. Prints the src → dst → queue configuration table for the
//! first pipelined ResNet block of R96, plus one for a GoogLeNet branch
//! pair (the other graph shape the paper maps).

use isos_nn::models::{googlenet_inception3a, resnet50};
use isosceles::interconnect::configure;
use isosceles::mapping::{map_network, ExecMode};
use isosceles::IsoscelesConfig;
use isosceles_bench::suite::SEED;

fn main() {
    let cfg = IsoscelesConfig::default();

    let net = resnet50(0.96, SEED);
    let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
    let block = mapping
        .groups
        .iter()
        .find(|g| g.layers.len() >= 4)
        .expect("a pipelined ResNet block");
    println!("# Figure 13: ResNet block on the programmable interconnect");
    println!("{}", configure(&net, block).to_table());
    println!("# paper: each inter-layer connection becomes a unit connection;");
    println!("#        the skip join runs on the merger path\n");

    let g = googlenet_inception3a(0.58, SEED);
    let gmap = map_network(&g, &cfg, ExecMode::Pipelined);
    for group in gmap.groups.iter().filter(|gr| gr.is_pipelined()) {
        println!("{}", configure(&g, group).to_table());
    }
}
