//! Table I: configuration of the ISOSceles system.

use isosceles::IsoscelesConfig;

fn main() {
    let cfg = IsoscelesConfig::default();
    println!("# Table I: ISOSceles configuration (paper values in parentheses)");
    println!("Lane parameters");
    println!("  Multiplier width     {:>8} b   (8b)", cfg.multiplier_bits);
    println!(
        "  Accumulator width    {:>8} b   (16b)",
        cfg.accumulator_bits
    );
    println!("  # MAC units          {:>8}     (64)", cfg.macs_per_lane);
    println!(
        "  Context array        {:>8} KB  (8KB)",
        cfg.context_bytes_per_lane >> 10
    );
    println!(
        "  Queues               {:>8} KB  (8KB)",
        cfg.queue_bytes_per_lane >> 10
    );
    println!(
        "  # Mergers            {:>8}     (16)",
        cfg.mergers_per_lane
    );
    println!("  Merger radix         {:>8}     (256)", cfg.merger_radix);
    println!("System parameters");
    println!("  # Lanes              {:>8}     (64)", cfg.lanes);
    println!(
        "  Filter buffer        {:>8} MB  (1MB)",
        cfg.filter_buffer_bytes >> 20
    );
    println!(
        "  DRAM bandwidth       {:>8} GB/s (128GB/s)",
        (cfg.dram_bytes_per_cycle * cfg.frequency_ghz) as u64
    );
    println!("Summary");
    println!("  Total # MAC units    {:>8}     (4096)", cfg.total_macs());
    println!(
        "  Total memory size    {:>8} MB  (2MB)",
        cfg.total_sram_bytes() >> 20
    );
    println!("  Frequency            {:>8} GHz (1GHz)", cfg.frequency_ghz);
}
