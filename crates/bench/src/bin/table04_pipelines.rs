//! Table IV: pipelineable workloads in ResNet-50 with 96% weight sparsity.
//!
//! Prints the pipeline groups the greedy mapper builds for R96 — each row
//! is one pipeline with its layer count (L, counting convs as the paper
//! does) and member layers — and checks the paper-level properties: only
//! the first conv and FC run unpipelined, pipelines span 3-7 convs, and
//! sparser variants pipeline more layers.

use isos_nn::models::resnet50;
use isosceles::mapping::{map_network, ExecMode};
use isosceles::IsoscelesConfig;
use isosceles_bench::suite::SEED;

fn main() {
    let cfg = IsoscelesConfig::default();
    let net = resnet50(0.96, SEED);
    let mapping = map_network(&net, &cfg, ExecMode::Pipelined);

    println!("# Table IV: pipelineable workloads in R96");
    println!("{:<24} {:>2}  layers", "workload", "L");
    for g in &mapping.groups {
        let convs = g.conv_count(&net);
        if convs < 2 {
            continue; // unpipelined singles listed below
        }
        let members: Vec<&str> = g
            .layers
            .iter()
            .map(|&id| net.layer(id).name.as_str())
            .filter(|n| !n.ends_with(".add"))
            .collect();
        println!("{:<24} {:>2}  {}", g.name, convs, members.join(", "));
    }
    println!();
    let single: Vec<&str> = mapping
        .groups
        .iter()
        .filter(|g| g.conv_count(&net) < 2)
        .map(|g| g.name.as_str())
        .collect();
    println!("unpipelined: {}", single.join(", "));
    println!();
    println!("# paper: pipelines of 3-6 convs; only conv1 and fc unpipelined (R96);");
    println!("#        R98/R99 pipeline 9-15 layers");
    for sparsity in [0.96, 0.98, 0.99] {
        let net = resnet50(sparsity, SEED);
        let m = map_network(&net, &cfg, ExecMode::Pipelined);
        let max_convs = m
            .pipelined_groups()
            .map(|g| g.conv_count(&net))
            .max()
            .unwrap_or(0);
        println!(
            "R{:.0}: {} pipelines, deepest {} convs ({} units incl. adds)",
            sparsity * 100.0,
            m.pipelined_groups().count(),
            max_convs,
            m.max_group_len()
        );
    }
}
