//! Table III: configuration of the SparTen baseline system.

use isos_baselines::SpartenConfig;

fn main() {
    let cfg = SpartenConfig::default();
    println!("# Table III: SparTen configuration (paper values in parentheses)");
    println!("Cluster parameters");
    println!("  Multiplier width     {:>8} b   (8b)", 8);
    println!("  Accumulator width    {:>8} b   (16b)", 16);
    println!(
        "  # MAC units          {:>8}     (64)",
        cfg.macs_per_cluster
    );
    println!(
        "  Buffers              {:>8} KB  (64KB)",
        cfg.cluster_buffer_bytes >> 10
    );
    println!("System parameters");
    println!("  # Clusters           {:>8}     (64)", cfg.clusters);
    println!(
        "  Filter buffer        {:>8} MB  (1MB)",
        cfg.filter_buffer_bytes >> 20
    );
    println!(
        "  DRAM bandwidth       {:>8} GB/s (128GB/s)",
        cfg.dram_bytes_per_cycle as u64
    );
    println!("Summary");
    println!("  Total # MAC units    {:>8}     (4096)", cfg.total_macs());
    println!(
        "  Total memory size    {:>8} MB  (5MB)",
        cfg.total_sram_bytes() >> 20
    );
    println!("  GoSPA activation filtering: {}", cfg.gospa_filtering);
}
