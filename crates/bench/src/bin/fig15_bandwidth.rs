//! Figure 15: memory bandwidth utilization of the three accelerators.
//!
//! Paper: Fused-Layer uses only ~47% of bandwidth (compute-bound); SparTen
//! always saturates it (memory-bound); ISOSceles frees bandwidth on some
//! networks.

use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;

fn main() {
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    println!("# Figure 15: memory bandwidth utilization (1.0 = saturated)");
    println!(
        "{:<5} {:>12} {:>10} {:>10}",
        "net", "Fused-Layer", "SparTen", "ISOSceles"
    );
    let mut fused_sum = 0.0;
    let mut sparten_min: f64 = 1.0;
    let mut freed = 0;
    for r in &rows {
        let f = r.fused.total.bw_util.ratio();
        let s = r.sparten.total.bw_util.ratio();
        let i = r.isosceles.total.bw_util.ratio();
        println!("{:<5} {:>12.2} {:>10.2} {:>10.2}", r.id, f, s, i);
        fused_sum += f;
        sparten_min = sparten_min.min(s);
        if i < 0.9 {
            freed += 1;
        }
    }
    println!();
    println!(
        "Fused-Layer mean: {:.2} (paper: 0.47, compute-bound)",
        fused_sum / rows.len() as f64
    );
    println!(
        "SparTen minimum:  {:.2} (paper: ~1.0, always memory-bound)",
        sparten_min
    );
    println!(
        "ISOSceles: {freed}/11 networks below 90% bandwidth (paper: 3 of 11 no longer need full bandwidth)"
    );
}
