//! Streaming-inference report: throughput and tail latency per
//! workload × model.
//!
//! ```text
//! stream_run [--smoke] [--net IDS] [--model NAMES] [--requests N]
//!            [--batch B] [--arrival burst|periodic:N|poisson:F]
//!            [--policy greedy|waitfull] [--seed N] [--out PATH]
//!            [--threads N] [--no-cache]
//! ```
//!
//! Streams `--requests` inference requests (default 256, each with its
//! own activation-sparsity draw) through every selected workload ×
//! model pair via the shared [`SuiteEngine`] cache, and writes one JSON
//! report with throughput (img/s at the modeled clock), p50/p95/p99
//! latency, queue depth, and the conserved traffic/energy totals per
//! row. `--smoke` shrinks the run to G58 × 8 requests so CI can
//! validate the schema in seconds.

use std::path::PathBuf;
use std::process::exit;

use isos_sim::energy::{energy_of, EnergyParams};
use isos_stream::{Arrival, BatchPolicy, StreamConfig, StreamMetrics};
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::stream::run_stream_cached;
use isosceles_bench::suite::SEED;
use isosceles_bench::trace::{accel_by_name, MODEL_NAMES};
use serde::{Deserialize, Serialize};

/// Schema tag stored in the report so downstream tooling can detect
/// incompatible layout changes.
pub const REPORT_SCHEMA: &str = "isosceles-stream-report/v1";

/// One streamed `(workload, model)` scenario.
#[derive(Debug, Serialize, Deserialize)]
struct StreamRowOut {
    /// Suite workload id (e.g. `R81`).
    workload: String,
    /// Accelerator model name (e.g. `isosceles`).
    model: String,
    /// Whether the row came from the result cache.
    cache_hit: bool,
    /// Stream makespan in cycles.
    cycles: u64,
    /// Throughput in images per second at the modeled clock.
    throughput_imgs_per_sec: f64,
    /// Median latency in cycles.
    p50_cycles: u64,
    /// 95th-percentile latency in cycles.
    p95_cycles: u64,
    /// 99th-percentile latency in cycles.
    p99_cycles: u64,
    /// Mean end-to-end latency in cycles.
    mean_latency_cycles: f64,
    /// Cycles the accelerator serviced requests.
    busy_cycles: u64,
    /// Cycles the accelerator idled on an empty queue.
    idle_cycles: u64,
    /// Cycles spent holding for batch formation.
    formation_cycles: u64,
    /// Batches dispatched.
    batches: u64,
    /// Largest queue depth observed.
    queue_max_depth: u64,
    /// Time-weighted mean queue depth.
    queue_mean_depth: f64,
    /// Total off-chip weight traffic in bytes (after amortization).
    weight_traffic: f64,
    /// Total off-chip activation traffic in bytes.
    act_traffic: f64,
    /// Total energy in millijoules.
    energy_mj: f64,
}

/// The full report as serialized to disk.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    /// Layout tag ([`REPORT_SCHEMA`]).
    schema: String,
    /// Base seed (request `r` perturbs it by `r`).
    seed: u64,
    /// Requests per stream.
    requests: u64,
    /// Batch size.
    batch: u64,
    /// Arrival-process spelling (`burst`, `periodic:N`, `poisson:F`).
    arrival: String,
    /// Batch-formation policy spelling.
    policy: String,
    /// Whether this was a `--smoke` run (subset of workloads).
    smoke: bool,
    /// One row per workload × model, workload-major in suite order.
    rows: Vec<StreamRowOut>,
}

/// Prints usage to stderr and exits with status 2.
fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: stream_run [--smoke] [--net IDS] [--model NAMES] [--requests N] \
         [--batch B]\n\
         \x20                 [--arrival burst|periodic:N|poisson:F] [--policy greedy|waitfull]\n\
         \x20                 [--seed N] [--out PATH] [--threads N] [--no-cache]\n\
         \n\
         --smoke          G58 x 8 requests (schema check)\n\
         --net IDS        comma-separated workload ids (default: full suite)\n\
         --model NAMES    comma-separated model names (default: all four)\n\
         --requests N     stream length (default 256)\n\
         --batch B        batch size (default 1)\n\
         --arrival A      arrival process (default burst)\n\
         --policy P       batch-formation policy (default greedy)\n\
         --seed N         base sparsity seed (default {SEED})\n\
         --out PATH       write the JSON report here (default: stdout)\n\
         --threads N      run-level worker threads (also ISOS_THREADS):\n\
         \x20                 requests are simulated serially, but each\n\
         \x20                 simulation spreads its pipeline groups over N\n\
         \x20                 workers. (The suite engine's job pool reads the\n\
         \x20                 same flag; stream rows are driven serially, so\n\
         \x20                 here only the run-level pool applies.)\n\
         --no-cache       disable the result cache (also ISOS_NO_CACHE)"
    );
    exit(2);
}

fn main() {
    let mut smoke = false;
    let mut nets: Vec<String> = Vec::new();
    let mut models: Vec<String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut seed = SEED;
    let mut cfg = StreamConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--net" => match it.next() {
                Some(v) => nets = v.split(',').map(|s| s.trim().to_string()).collect(),
                None => usage("--net needs a value"),
            },
            "--model" => match it.next() {
                Some(v) => models = v.split(',').map(|s| s.trim().to_string()).collect(),
                None => usage("--model needs a value"),
            },
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.requests = n,
                None => usage("--requests needs an integer"),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.batch = n,
                None => usage("--batch needs an integer"),
            },
            "--arrival" => match it.next() {
                Some(v) => match Arrival::parse(v) {
                    Ok(a) => cfg.arrival = a,
                    Err(e) => usage(&e),
                },
                None => usage("--arrival needs a value"),
            },
            "--policy" => match it.next() {
                Some(v) => match BatchPolicy::parse(v) {
                    Ok(p) => cfg.policy = p,
                    Err(e) => usage(&e),
                },
                None => usage("--policy needs a value"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => usage("--seed needs an integer"),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => usage("--out needs a value"),
            },
            // Also an engine flag (EngineOptions::from_env re-parses it);
            // here it sizes the run-level pool inside each request's
            // simulation — the only parallelism this serial driver has.
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => isos_sim::threads::set_run_threads(n),
                _ => usage("--threads needs an integer >= 1"),
            },
            "--no-cache" => {}
            "--help" | "-h" => usage("help requested"),
            other if other.starts_with("--threads=") => {
                match other["--threads=".len()..].parse::<usize>() {
                    Ok(n) if n >= 1 => isos_sim::threads::set_run_threads(n),
                    _ => usage("--threads needs an integer >= 1"),
                }
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }

    if smoke {
        if nets.is_empty() {
            nets = vec!["G58".to_string()];
        }
        cfg.requests = cfg.requests.min(8);
    }
    if nets.is_empty() {
        nets = isos_nn::models::SUITE_IDS
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    if models.is_empty() {
        models = MODEL_NAMES.iter().map(|s| s.to_string()).collect();
    }
    if let Err(e) = cfg.validate() {
        usage(&e);
    }
    for id in &nets {
        if !isos_nn::models::SUITE_IDS.contains(&id.as_str()) {
            usage(&format!("unknown workload id {id:?}"));
        }
    }

    let engine = SuiteEngine::from_env();
    let params = EnergyParams::default();
    eprintln!(
        "stream_run: {} requests (batch {}, {} arrivals, {} policy) x {} workloads x {} models",
        cfg.requests,
        cfg.batch,
        cfg.arrival.spell(),
        cfg.policy.spell(),
        nets.len(),
        models.len()
    );

    let mut rows = Vec::with_capacity(nets.len() * models.len());
    for id in &nets {
        for name in &models {
            let Some(accel) = accel_by_name(name) else {
                usage(&format!("unknown model {name:?}"));
            };
            let (s, cache_hit) = run_stream_cached(&engine, accel.as_ref(), id, seed, &cfg);
            rows.push(row_out(id, accel.name(), cache_hit, &s, &cfg, &params));
        }
    }

    let report = Report {
        schema: REPORT_SCHEMA.to_string(),
        seed,
        requests: cfg.requests,
        batch: cfg.batch,
        arrival: cfg.arrival.spell(),
        policy: cfg.policy.spell().to_string(),
        smoke,
        rows,
    };
    let text = serde::json::to_string(&report);
    match &out {
        Some(path) => {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("stream_run: cannot create {}: {e}", dir.display());
                    exit(1);
                }
            }
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("stream_run: cannot write {}: {e}", path.display());
                exit(1);
            }
            eprintln!(
                "stream_run: wrote {} ({} rows)",
                path.display(),
                report.rows.len()
            );
        }
        None => println!("{text}"),
    }
}

/// Flattens one stream result into its report row, rechecking the
/// conservation invariants so a bad row can never be written quietly.
fn row_out(
    workload: &str,
    model: &str,
    cache_hit: bool,
    s: &StreamMetrics,
    cfg: &StreamConfig,
    params: &EnergyParams,
) -> StreamRowOut {
    assert_eq!(
        s.service_sum(),
        s.busy_cycles,
        "{workload}/{model}: span/busy conservation"
    );
    assert_eq!(
        s.busy_cycles + s.idle_cycles + s.formation_cycles,
        s.total.cycles,
        "{workload}/{model}: server-time conservation"
    );
    let n = s.requests.len().max(1) as f64;
    let mean_latency = s.requests.iter().map(|r| r.latency() as f64).sum::<f64>() / n;
    StreamRowOut {
        workload: workload.to_string(),
        model: model.to_string(),
        cache_hit,
        cycles: s.total.cycles,
        throughput_imgs_per_sec: s.throughput_imgs_per_sec(cfg.clock_ghz),
        p50_cycles: s.p50(),
        p95_cycles: s.p95(),
        p99_cycles: s.p99(),
        mean_latency_cycles: mean_latency,
        busy_cycles: s.busy_cycles,
        idle_cycles: s.idle_cycles,
        formation_cycles: s.formation_cycles,
        batches: s.batches,
        queue_max_depth: s.queue.max_depth,
        queue_mean_depth: s.queue.mean_depth,
        weight_traffic: s.total.weight_traffic,
        act_traffic: s.total.act_traffic,
        energy_mj: energy_of(&s.total.activity, params).total_mj(),
    }
}
