//! Figure 16: MAC array utilization of the three accelerators.
//!
//! Paper: Fused-Layer ~100% (dense, compute-bound); ISOSceles averages 35%
//! (3.4x SparTen); VGG exceeds 50%; utilization drops as ResNet gets
//! sparser (more memory-bound).

use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;

fn main() {
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    println!("# Figure 16: MAC array utilization");
    println!(
        "{:<5} {:>12} {:>10} {:>10}",
        "net", "Fused-Layer", "SparTen", "ISOSceles"
    );
    let mut isos = Vec::new();
    let mut sparten = Vec::new();
    for r in &rows {
        let f = r.fused.total.mac_util.ratio();
        let s = r.sparten.total.mac_util.ratio();
        let i = r.isosceles.total.mac_util.ratio();
        println!("{:<5} {:>12.2} {:>10.2} {:>10.2}", r.id, f, s, i);
        isos.push(i);
        sparten.push(s);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "ISOSceles mean: {:.2} (paper: 0.35); SparTen mean: {:.2}; ratio {:.1}x (paper: 3.4x)",
        mean(&isos),
        mean(&sparten),
        mean(&isos) / mean(&sparten)
    );
    // Sparser ResNet -> lower ISOSceles utilization (more memory-bound).
    let r81 = isos[0];
    let r99 = isos[5];
    println!(
        "R81 {:.2} -> R99 {:.2}: utilization falls with sparsity (paper: same trend)",
        r81, r99
    );
    let v68 = isos[6];
    println!("V68 {:.2} (paper: VGG over 0.50)", v68);
}
