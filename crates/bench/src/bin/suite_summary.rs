//! One-screen summary of the full evaluation: per-workload speedups,
//! traffic, and utilizations, with the paper's headline gmeans.
//!
//! With `--trace`, additionally re-runs the whole 11 × 4 matrix with
//! event tracing attached and writes `results/traces/stall_summary.md`:
//! per-model aggregate stall shares (busy / input-starved /
//! output-blocked / dram-throttled / merge-bound, cycle-weighted over
//! every unit of every workload). Tracing is uncached and observes the
//! same simulations, so the printed table is unaffected.
use std::fmt::Write as _;

use isos_sim::stats::geometric_mean;
use isos_trace::StallKind;
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;
use isosceles_bench::trace::{accel_by_name, trace_workload, MODEL_NAMES, TRACE_DIR};

fn main() {
    let trace = std::env::args().skip(1).any(|a| a == "--trace");
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    println!(
        "{:<5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "net", "IvsS", "IvsF", "SvsF", "I_MB", "S_MB", "F_MB", "I_bw", "I_mac", "S/I_tr"
    );
    let mut vs_sparten = vec![];
    let mut vs_fused = vec![];
    let mut traffic = vec![];
    for r in &rows {
        println!(
            "{:<5} {:>8.2} {:>8.2} {:>8.2} {:>9.1} {:>9.1} {:>9.1} {:>8.2} {:>8.2} {:>8.2}",
            r.id,
            r.speedup_vs_sparten(),
            r.speedup_vs_fused(),
            r.sparten_speedup_vs_fused(),
            r.isosceles.total.total_traffic() / 1e6,
            r.sparten.total.total_traffic() / 1e6,
            r.fused.total.total_traffic() / 1e6,
            r.isosceles.total.bw_util.ratio(),
            r.isosceles.total.mac_util.ratio(),
            r.sparten_traffic_ratio()
        );
        vs_sparten.push(r.speedup_vs_sparten());
        vs_fused.push(r.speedup_vs_fused());
        traffic.push(r.sparten_traffic_ratio());
    }
    println!("gmean IvsSparTen={:.2} (paper 4.3)  IvsFused={:.2} (paper 7.5)  traffic S/I={:.2} (paper 4.7)",
        geometric_mean(&vs_sparten), geometric_mean(&vs_fused), geometric_mean(&traffic));

    if trace {
        let ids: Vec<String> = rows.iter().map(|r| r.id.to_string()).collect();
        match write_stall_summary(&ids) {
            Ok(path) => eprintln!("stall summary written to {path}"),
            Err(e) => {
                eprintln!("error: failed to write stall summary: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Traces every workload on every model and writes the cycle-weighted
/// per-model stall-share table. Returns the written path.
fn write_stall_summary(ids: &[String]) -> std::io::Result<String> {
    let mut md = String::from(
        "# Suite stall attribution\n\n\
         Cycle-weighted occupancy over every traced unit of every suite\n\
         workload, per model (from `suite_summary --trace`).\n\n\
         | model | unit-cycles | busy |",
    );
    for kind in StallKind::ALL {
        let _ = write!(md, " {} |", kind.label().replace('_', "-"));
    }
    md.push_str("\n|---|---:|---:|---:|---:|---:|---:|\n");

    for model in MODEL_NAMES {
        let accel = accel_by_name(model).expect("known model");
        let mut cycles = 0u64;
        let mut busy = 0.0f64;
        let mut stalls = [0.0f64; 4];
        for id in ids {
            let w = isos_nn::models::suite_workload(id, SEED);
            let run = trace_workload(&w, accel.as_ref(), SEED);
            for b in run.buffer.breakdowns() {
                cycles += b.cycles;
                busy += b.busy;
                for (acc, s) in stalls.iter_mut().zip(&b.stalls) {
                    *acc += s;
                }
            }
            eprintln!("traced {model}/{id}");
        }
        let total = (cycles as f64).max(1.0);
        let _ = write!(md, "| {model} | {cycles} | {:.1}% |", 100.0 * busy / total);
        for kind in StallKind::ALL {
            let _ = write!(md, " {:.1}% |", 100.0 * stalls[kind.index()] / total);
        }
        md.push('\n');
    }

    std::fs::create_dir_all(TRACE_DIR)?;
    let path = format!("{TRACE_DIR}/stall_summary.md");
    std::fs::write(&path, md)?;
    Ok(path)
}
