//! One-screen summary of the full evaluation: per-workload speedups,
//! traffic, and utilizations, with the paper's headline gmeans.
use isos_sim::stats::geometric_mean;
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;

fn main() {
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    println!(
        "{:<5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "net", "IvsS", "IvsF", "SvsF", "I_MB", "S_MB", "F_MB", "I_bw", "I_mac", "S/I_tr"
    );
    let mut vs_sparten = vec![];
    let mut vs_fused = vec![];
    let mut traffic = vec![];
    for r in &rows {
        println!(
            "{:<5} {:>8.2} {:>8.2} {:>8.2} {:>9.1} {:>9.1} {:>9.1} {:>8.2} {:>8.2} {:>8.2}",
            r.id,
            r.speedup_vs_sparten(),
            r.speedup_vs_fused(),
            r.sparten_speedup_vs_fused(),
            r.isosceles.total.total_traffic() / 1e6,
            r.sparten.total.total_traffic() / 1e6,
            r.fused.total.total_traffic() / 1e6,
            r.isosceles.total.bw_util.ratio(),
            r.isosceles.total.mac_util.ratio(),
            r.sparten_traffic_ratio()
        );
        vs_sparten.push(r.speedup_vs_sparten());
        vs_fused.push(r.speedup_vs_fused());
        traffic.push(r.sparten_traffic_ratio());
    }
    println!("gmean IvsSparTen={:.2} (paper 4.3)  IvsFused={:.2} (paper 7.5)  traffic S/I={:.2} (paper 4.7)",
        geometric_mean(&vs_sparten), geometric_mean(&vs_fused), geometric_mean(&traffic));
}
