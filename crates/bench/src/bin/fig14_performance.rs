//! Figure 14: speedups (a), cycles (b), and off-chip traffic (c) across
//! the 11-CNN suite for Fused-Layer, SparTen(+GoSPA), and ISOSceles.

use isos_sim::stats::geometric_mean;
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;

fn main() {
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;

    println!("# Figure 14a: speedup over Fused-Layer (higher is better)");
    println!("{:<5} {:>10} {:>10}", "net", "SparTen", "ISOSceles");
    for r in &rows {
        println!(
            "{:<5} {:>10.2} {:>10.2}",
            r.id,
            r.sparten_speedup_vs_fused(),
            r.speedup_vs_fused()
        );
    }
    let gm_isos: Vec<f64> = rows.iter().map(|r| r.speedup_vs_fused()).collect();
    let gm_spar: Vec<f64> = rows.iter().map(|r| r.speedup_vs_sparten()).collect();
    println!(
        "gmean ISOSceles vs Fused-Layer: {:.2}x  (paper: 7.5x, up to 18.0x; measured max {:.1}x)",
        geometric_mean(&gm_isos),
        gm_isos.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "gmean ISOSceles vs SparTen:     {:.2}x  (paper: 4.3x, up to 6.7x; measured max {:.1}x)",
        geometric_mean(&gm_spar),
        gm_spar.iter().cloned().fold(0.0, f64::max)
    );

    println!();
    println!("# Figure 14b: execution cycles (millions, lower is better)");
    println!(
        "{:<5} {:>12} {:>12} {:>12}",
        "net", "Fused-Layer", "SparTen", "ISOSceles"
    );
    for r in &rows {
        println!(
            "{:<5} {:>12.3} {:>12.3} {:>12.3}",
            r.id,
            r.fused.total.cycles as f64 / 1e6,
            r.sparten.total.cycles as f64 / 1e6,
            r.isosceles.total.cycles as f64 / 1e6
        );
    }

    println!();
    println!("# Figure 14c: off-chip traffic normalized to Fused-Layer,");
    println!("#             split into weight (W) and activation (A) traffic");
    println!(
        "{:<5} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "net", "F_W", "F_A", "F_tot", "S_W", "S_A", "S_tot", "I_W", "I_A", "I_tot"
    );
    for r in &rows {
        let f = r.fused.total.total_traffic();
        println!(
            "{:<5} {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            r.id,
            r.fused.total.weight_traffic / f,
            r.fused.total.act_traffic / f,
            1.0,
            r.sparten.total.weight_traffic / f,
            r.sparten.total.act_traffic / f,
            r.sparten.total.total_traffic() / f,
            r.isosceles.total.weight_traffic / f,
            r.isosceles.total.act_traffic / f,
            r.isosceles.total.total_traffic() / f
        );
    }
    let tr_f: Vec<f64> = rows.iter().map(|r| 1.0 / r.traffic_vs_fused()).collect();
    let tr_s: Vec<f64> = rows.iter().map(|r| r.sparten_traffic_ratio()).collect();
    println!(
        "gmean traffic reduction vs Fused-Layer: {:.2}x (paper: 3.6x)",
        geometric_mean(&tr_f)
    );
    println!(
        "gmean traffic reduction vs SparTen:     {:.2}x (paper: 4.7x, up to 8.5x; measured max {:.1}x)",
        geometric_mean(&tr_s),
        tr_s.iter().cloned().fold(0.0, f64::max)
    );
}
