//! Figure 4: input activation and weight sparsity per ResNet-50 layer.
//!
//! The paper's Fig. 4 scatters one point per pruned ResNet-50 (R90) layer:
//! weight sparsity clustered near 90%, activation sparsity spread between
//! 20% and 80%. This harness prints the same scatter as CSV rows plus band
//! summaries.

use isos_nn::models::resnet50;
use isosceles_bench::suite::SEED;

fn main() {
    let net = resnet50(0.90, SEED);
    println!("# Figure 4: sparsity of pruned ResNet-50 (R90) layers");
    println!("layer,weight_sparsity_pct,input_act_sparsity_pct");
    let mut wmin: f64 = 1.0;
    let mut wmax: f64 = 0.0;
    let mut amin: f64 = 1.0;
    let mut amax: f64 = 0.0;
    for id in net.conv_ids() {
        let l = net.layer(id);
        let ws = 1.0 - l.weight_density;
        let as_ = 1.0 - l.in_act_density;
        println!("{},{:.1},{:.1}", l.name, ws * 100.0, as_ * 100.0);
        wmin = wmin.min(ws);
        wmax = wmax.max(ws);
        // conv1 sees the dense image; the paper's activation band covers
        // the ReLU'd intermediate layers.
        if l.name != "conv1" {
            amin = amin.min(as_);
            amax = amax.max(as_);
        }
    }
    println!();
    println!("# paper: weights ~90% sparse across layers; activations 20%-80% sparse");
    println!(
        "# measured: weights {:.0}%-{:.0}% (global {:.1}%); activations {:.0}%-{:.0}%",
        wmin * 100.0,
        wmax * 100.0,
        net.weight_sparsity() * 100.0,
        amin * 100.0,
        amax * 100.0
    );
}
