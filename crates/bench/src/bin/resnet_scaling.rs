//! Extension study: ISOSceles across the ResNet family (18/34/50/101/152)
//! at 90% weight sparsity — does the inter-layer-pipelining advantage
//! generalize beyond the paper's ResNet-50?

use isos_baselines::SpartenConfig;
use isos_nn::models::{resnet, ResNetDepth};
use isosceles::accel::Accelerator;
use isosceles::mapping::{map_network, ExecMode};
use isosceles::IsoscelesConfig;
use isosceles_bench::suite::SEED;

fn main() {
    let cfg = IsoscelesConfig::default();
    println!("# ResNet family at 90% weight sparsity on ISOSceles vs SparTen");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "model", "GMACs", "isos Kcyc", "spar Kcyc", "speedup", "pipelines"
    );
    for depth in [
        ResNetDepth::D18,
        ResNetDepth::D34,
        ResNetDepth::D50,
        ResNetDepth::D101,
        ResNetDepth::D152,
    ] {
        let net = resnet(depth, 0.90, SEED);
        let isos = cfg.simulate(&net, SEED);
        let spar = SpartenConfig::default().simulate(&net, SEED);
        let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
        println!(
            "ResNet-{:<5} {:>10.2} {:>12.1} {:>12.1} {:>9.2}x {:>10}",
            depth.layers(),
            net.total_dense_macs() / 1e9,
            isos.total.cycles as f64 / 1e3,
            spar.total.cycles as f64 / 1e3,
            spar.total.cycles as f64 / isos.total.cycles as f64,
            mapping.pipelined_groups().count()
        );
    }
    println!();
    println!("# Expected: the advantage holds across depths (all layer-by-layer");
    println!("# baselines pay per-layer activation spills that pipelining avoids).");
}
