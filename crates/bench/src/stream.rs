//! Cached, parallel streaming-inference runs over the suite engine.
//!
//! `isos-stream` owns the request generator and the scheduler; this
//! module supplies the engine-side glue: per-request simulations fan out
//! over the engine's worker-thread budget (assembled by request index,
//! so results are bit-identical regardless of thread count), and the
//! assembled [`StreamMetrics`] row is memoized in the engine's
//! [`CacheStore`](crate::cache::CacheStore) under the `"stream"` payload
//! kind. Only the finished row is cached — a 256-request stream would
//! otherwise dump hundreds of per-request entries into the store for a
//! scenario nobody addresses by request.

use std::sync::atomic::{AtomicUsize, Ordering};

use isos_stream::gen::{request_seed, request_workload};
use isos_stream::{arrivals, schedule, StreamConfig, StreamMetrics};
use isosceles::accel::Accelerator;
use parking_lot::Mutex;

use crate::cache::EntryMeta;
use crate::engine::{SuiteEngine, WorkloadId, SCHEMA_VERSION};
use crate::trace::{accel_by_name, MODEL_NAMES};
use isos_sim::metrics::RunMetrics;

/// Payload kind streaming rows are stored under.
pub const STREAM_KIND: &str = "stream";

/// FNV-1a fold, matching [`isosceles::accel::stable_key`]'s primitive.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(state, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Content hash addressing one `(accelerator, workload, scenario, seed)`
/// streaming row under the current schema version. The `"stream"` tag
/// keeps the key space disjoint from [`crate::engine::job_key`] even
/// for `batch = 1` degenerate scenarios.
pub fn stream_key(
    accel: &dyn Accelerator,
    workload: &WorkloadId,
    cfg: &StreamConfig,
    seed: u64,
) -> u64 {
    let h = fnv1a(0xcbf2_9ce4_8422_2325, &SCHEMA_VERSION.to_le_bytes());
    let h = fnv1a(h, STREAM_KIND.as_bytes());
    let h = fnv1a(h, &accel.cache_key().to_le_bytes());
    let h = fnv1a(h, workload.as_str().as_bytes());
    let h = fnv1a(h, &cfg.cache_key().to_le_bytes());
    fnv1a(h, &seed.to_le_bytes())
}

/// Simulates every request of the stream, fanning out over `threads`
/// workers; results are assembled by request index, so the output is
/// independent of thread count and scheduling.
///
/// # Panics
///
/// Panics if `workload` is not a suite id.
fn simulate_requests(
    accel: &dyn Accelerator,
    workload: &str,
    seed: u64,
    cfg: &StreamConfig,
    threads: usize,
) -> Vec<RunMetrics> {
    let n = cfg.requests as usize;
    let slots: Mutex<Vec<Option<RunMetrics>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let threads = threads.clamp(1, n.max(1));

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = i as u64;
                let w = request_workload(workload, seed, r)
                    .unwrap_or_else(|| panic!("unknown workload id {workload:?}"));
                let total = accel.simulate(&w.network, request_seed(seed, r)).total;
                slots.lock()[i] = Some(total);
            });
        }
    })
    .expect("stream request worker panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("all requests simulated"))
        .collect()
}

/// Runs (or recalls) one streaming scenario through the engine's cache.
///
/// Returns the stream metrics and whether they came from the cache.
///
/// # Panics
///
/// Panics if `workload` is not a suite id or `cfg` fails validation.
pub fn run_stream_cached(
    engine: &SuiteEngine,
    accel: &dyn Accelerator,
    workload: &str,
    seed: u64,
    cfg: &StreamConfig,
) -> (StreamMetrics, bool) {
    cfg.validate()
        .unwrap_or_else(|e| panic!("bad stream config: {e}"));
    let id = WorkloadId::new(workload);
    let key = stream_key(accel, &id, cfg, seed);
    let meta = EntryMeta {
        accel: accel.name().to_string(),
        accel_key: accel.cache_key(),
        workload: id,
        seed,
    };
    let store = engine.cache_store();
    if let Some(store) = &store {
        if let Some(row) = store.load_payload::<StreamMetrics>(key, STREAM_KIND, &meta) {
            return (row, true);
        }
    }
    let singles = simulate_requests(accel, workload, seed, cfg, engine.options().threads);
    let metrics = schedule(&singles, &arrivals(cfg, seed), cfg);
    if let Some(store) = &store {
        store.store_payload(key, STREAM_KIND, &meta, &metrics);
    }
    (metrics, false)
}

/// One suite workload's streaming results across the four paper models.
#[derive(Clone, Debug)]
pub struct StreamSuiteRow {
    /// Workload id (`R81`, ..., `M89`).
    pub id: WorkloadId,
    /// Per-model stream metrics, in [`MODEL_NAMES`] order.
    pub models: Vec<(String, StreamMetrics)>,
}

/// Runs the streaming scenario on all 11 suite workloads × 4 models.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_stream_suite(
    engine: &SuiteEngine,
    seed: u64,
    cfg: &StreamConfig,
) -> Vec<StreamSuiteRow> {
    isos_nn::models::SUITE_IDS
        .iter()
        .map(|id| {
            let models = MODEL_NAMES
                .iter()
                .map(|name| {
                    let accel = accel_by_name(name).expect("paper model");
                    let (metrics, _) = run_stream_cached(engine, accel.as_ref(), id, seed, cfg);
                    (name.to_string(), metrics)
                })
                .collect();
            StreamSuiteRow {
                id: WorkloadId::new(*id),
                models,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::suite::SEED;
    use isos_nn::models::suite_workload;
    use isos_stream::{Arrival, BatchPolicy};
    use isosceles::IsoscelesConfig;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir(tag: &str) -> PathBuf {
        static NONCE: AtomicU32 = AtomicU32::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("isos-stream-{}-{}-{}", std::process::id(), tag, n));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine(threads: usize, use_cache: bool, tag: &str) -> SuiteEngine {
        SuiteEngine::new(EngineOptions {
            threads,
            use_cache,
            cache_dir: scratch_dir(tag),
            quiet: true,
            ..EngineOptions::default()
        })
    }

    fn small_cfg(requests: u64, batch: u64) -> StreamConfig {
        StreamConfig {
            requests,
            batch,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn same_seed_is_bit_identical_across_thread_counts() {
        // Satellite: the assembled stream (request order, spans, and
        // metrics) must not depend on --threads.
        let accel = IsoscelesConfig::default();
        let cfg = StreamConfig {
            requests: 6,
            batch: 2,
            arrival: Arrival::Poisson { mean: 50_000.0 },
            policy: BatchPolicy::WaitFull,
            ..StreamConfig::default()
        };
        let (serial, _) = run_stream_cached(&engine(1, false, "t1"), &accel, "G58", SEED, &cfg);
        let (parallel, _) = run_stream_cached(&engine(4, false, "t4"), &accel, "G58", SEED, &cfg);
        assert_eq!(serial, parallel);
        // And the whole thing is a pure function of the seed.
        let (replay, _) = run_stream_cached(&engine(3, false, "t3"), &accel, "G58", SEED, &cfg);
        assert_eq!(serial, replay);
        let (other, _) = run_stream_cached(&engine(3, false, "t5"), &accel, "G58", SEED + 1, &cfg);
        assert_ne!(serial, other, "seed must actually matter");
    }

    #[test]
    fn matches_the_serial_reference_implementation() {
        let accel = IsoscelesConfig::default();
        let cfg = small_cfg(4, 2);
        let (engined, _) = run_stream_cached(&engine(4, false, "ref"), &accel, "G58", SEED, &cfg);
        let reference = isos_stream::run_stream(&accel, "G58", SEED, &cfg);
        assert_eq!(engined, reference);
    }

    #[test]
    fn batch1_single_request_equals_accelerator_simulate() {
        // Satellite: the degenerate stream is bit-identical to the
        // single-inference path the golden metrics lock down.
        let accel = IsoscelesConfig::default();
        let cfg = small_cfg(1, 1);
        let (s, _) = run_stream_cached(&engine(2, false, "golden"), &accel, "G58", SEED, &cfg);
        let golden = accel.simulate(&suite_workload("G58", SEED).network, SEED);
        assert_eq!(s.total, golden.total);
        assert_eq!(s.requests[0].metrics, golden.total);
        assert_eq!(s.busy_cycles, golden.total.cycles);
        assert_eq!((s.idle_cycles, s.formation_cycles), (0, 0));
    }

    #[test]
    fn stream_rows_are_cached_and_replayed() {
        let accel = IsoscelesConfig::default();
        let cfg = small_cfg(3, 2);
        let eng = engine(2, true, "cache");
        let (cold, hit) = run_stream_cached(&eng, &accel, "G58", SEED, &cfg);
        assert!(!hit);
        let (warm, hit) = run_stream_cached(&eng, &accel, "G58", SEED, &cfg);
        assert!(hit, "second run must come from the cache");
        assert_eq!(warm, cold);
        // A different scenario misses: the config is part of the key.
        let (_, hit) = run_stream_cached(&eng, &accel, "G58", SEED, &small_cfg(3, 3));
        assert!(!hit);
    }

    #[test]
    fn stream_and_job_keys_never_collide() {
        let accel = IsoscelesConfig::default();
        let id = WorkloadId::new("G58");
        let jk = crate::engine::job_key(&accel, &id, SEED);
        let sk = stream_key(&accel, &id, &small_cfg(1, 1), SEED);
        assert_ne!(jk, sk);
    }

    #[test]
    fn suite_streams_conserve_latency_on_every_workload_and_model() {
        // Acceptance: per-request latency conservation (sum of span
        // cycles == reported stream cycles for the default burst
        // scenario) across all 11 workloads × 4 models.
        let eng = engine(4, false, "suite");
        let cfg = small_cfg(2, 2);
        let rows = run_stream_suite(&eng, SEED, &cfg);
        assert_eq!(rows.len(), 11);
        for row in &rows {
            assert_eq!(row.models.len(), 4);
            for (model, s) in &row.models {
                assert_eq!(s.requests.len(), 2, "{model}/{}", row.id.as_str());
                assert_eq!(s.service_sum(), s.busy_cycles);
                assert_eq!(
                    s.busy_cycles + s.idle_cycles + s.formation_cycles,
                    s.total.cycles
                );
                // Burst arrivals: the makespan is exactly the sum of
                // span service cycles.
                assert_eq!(s.service_sum(), s.total.cycles);
                assert!(s.p99() >= s.p50());
                assert!(s.throughput_imgs_per_cycle() > 0.0);
            }
        }
    }
}
