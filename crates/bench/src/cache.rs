//! The sharded, LRU-bounded persistent result store.
//!
//! Replaces the flat `results/cache/<hash>.json` layout: entries now
//! live in 16 shard directories keyed by the top nibble of the job
//! hash, and each shard carries a `manifest.json` tracking entry sizes
//! and last-access order. The store is the single persistence layer
//! behind both the CLI [`SuiteEngine`](crate::engine::SuiteEngine) and
//! the long-running `isos-serve` server, so its guarantees matter:
//!
//! - **Atomic writes**: entries and manifests are written to a temp
//!   file and renamed into place, so concurrent writers (threads of one
//!   process, or a server and a CLI run racing on the same directory)
//!   never expose half-written JSON.
//! - **LRU byte bound**: an optional `--cache-bytes` / `ISOS_CACHE_BYTES`
//!   budget is split evenly across the 16 shards; a store that pushes a
//!   shard over its slice evicts least-recently-used entries until it
//!   fits, so total on-disk bytes never exceed the budget.
//! - **Quarantine, not silent overwrite**: corrupt, truncated, or
//!   unknown-schema entry files are renamed to `*.bad` and recomputed
//!   once; the store self-heals instead of re-tripping on (or silently
//!   clobbering) the same poisoned file every run.
//! - **Migration + adoption**: legacy flat-layout entries found at the
//!   store root are moved into their shard on open, and valid entry
//!   files missing from a manifest (e.g. written by a crashed process)
//!   are adopted on first touch — warm caches stay warm across layouts
//!   and processes.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use isos_sim::metrics::NetworkMetrics;
use serde::json::Value;
use serde::{Deserialize, Serialize};

use crate::engine::{WorkloadId, SCHEMA_VERSION};

/// Number of shard directories (`0/` through `f/`, by top hash nibble).
pub const SHARD_COUNT: usize = 16;

/// Version of the per-shard manifest layout.
const MANIFEST_SCHEMA: u32 = 1;

/// The key fields an entry must match to count as a hit. Stored inside
/// every entry file and revalidated on load, so a hash collision or a
/// stale configuration degrades to a recompute instead of wrong numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryMeta {
    /// Accelerator model name.
    pub accel: String,
    /// Stable hash of the accelerator configuration.
    pub accel_key: u64,
    /// Workload the metrics belong to.
    pub workload: WorkloadId,
    /// RNG seed of the run.
    pub seed: u64,
}

/// On-disk layout of one memoized job result.
///
/// `kind` discriminates what the `payload` tree decodes to (`"metrics"`
/// for single-inference [`NetworkMetrics`] rows, `"stream"` for
/// streaming rows), so heterogeneous row types share one store without
/// one kind's entry ever decoding as another's. The payload stays an
/// uninterpreted [`Value`] until a typed load asks for it, which is why
/// the (de)serialization is hand-written rather than derived.
#[derive(Clone, Debug)]
struct EntryFile {
    schema: u32,
    kind: String,
    accel: String,
    accel_key: u64,
    workload: WorkloadId,
    seed: u64,
    payload: Value,
}

impl Serialize for EntryFile {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("schema".to_string(), self.schema.to_value()),
            ("kind".to_string(), self.kind.to_value()),
            ("accel".to_string(), self.accel.to_value()),
            ("accel_key".to_string(), self.accel_key.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("payload".to_string(), self.payload.clone()),
        ])
    }
}

impl Deserialize for EntryFile {
    fn from_value(v: &Value) -> Result<Self, serde::json::Error> {
        Ok(EntryFile {
            schema: u32::from_value(v.field("schema")?)?,
            kind: String::from_value(v.field("kind")?)?,
            accel: String::from_value(v.field("accel")?)?,
            accel_key: u64::from_value(v.field("accel_key")?)?,
            workload: WorkloadId::from_value(v.field("workload")?)?,
            seed: u64::from_value(v.field("seed")?)?,
            payload: v.field("payload")?.clone(),
        })
    }
}

/// One manifest record: `(key, bytes, last_access)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ManifestEntry {
    key: String,
    bytes: u64,
    last_access: u64,
}

/// Per-shard manifest as persisted in `<shard>/manifest.json`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct Manifest {
    schema: u32,
    entries: Vec<ManifestEntry>,
}

/// Lifetime operation counters for one store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Loads that returned valid metrics.
    pub hits: u64,
    /// Loads that found nothing usable.
    pub misses: u64,
    /// Entries written (including overwrites).
    pub writes: u64,
    /// Corrupt/unknown-schema files renamed to `*.bad`.
    pub quarantined: u64,
    /// Valid files adopted into a manifest that had lost track of them.
    pub adopted: u64,
    /// Entries evicted to hold the byte bound.
    pub evicted_entries: u64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
}

/// Current on-disk footprint of a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreUsage {
    /// Live entries across all shards.
    pub entries: usize,
    /// Bytes those entries occupy (as recorded in the manifests).
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct AtomicCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    quarantined: AtomicU64,
    adopted: AtomicU64,
    evicted_entries: AtomicU64,
    evicted_bytes: AtomicU64,
}

/// The sharded, LRU-bounded persistent cache. See the [module docs](self).
#[derive(Debug)]
pub struct CacheStore {
    root: PathBuf,
    /// Total byte budget; `None` = unbounded.
    byte_limit: Option<u64>,
    /// Per-shard slice of the budget (`byte_limit / SHARD_COUNT`).
    shard_limit: Option<u64>,
    /// One lock per shard serializing manifest read-modify-write cycles.
    locks: [Mutex<()>; SHARD_COUNT],
    /// Monotonic logical clock ordering accesses for LRU.
    clock: AtomicU64,
    counters: AtomicCounters,
}

impl CacheStore {
    /// Opens (creating if needed) a store rooted at `root`, bounded to
    /// `byte_limit` total bytes (`None` = unbounded). Legacy flat-layout
    /// entry files found directly under `root` are migrated into their
    /// shards.
    pub fn open(root: impl Into<PathBuf>, byte_limit: Option<u64>) -> Self {
        let root = root.into();
        let store = Self {
            root,
            byte_limit,
            shard_limit: byte_limit.map(|b| b / SHARD_COUNT as u64),
            locks: std::array::from_fn(|_| Mutex::new(())),
            clock: AtomicU64::new(1),
            counters: AtomicCounters::default(),
        };
        let _ = std::fs::create_dir_all(&store.root);
        store.migrate_flat_layout();
        store.init_clock();
        store
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The total byte budget, if bounded.
    pub fn byte_limit(&self) -> Option<u64> {
        self.byte_limit
    }

    /// Snapshot of the lifetime operation counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            quarantined: self.counters.quarantined.load(Ordering::Relaxed),
            adopted: self.counters.adopted.load(Ordering::Relaxed),
            evicted_entries: self.counters.evicted_entries.load(Ordering::Relaxed),
            evicted_bytes: self.counters.evicted_bytes.load(Ordering::Relaxed),
        }
    }

    /// Loads the single-inference metrics row for `key`, validating it
    /// against `expect`. Shorthand for
    /// [`load_payload`](Self::load_payload) with kind `"metrics"`.
    pub fn load(&self, key: u64, expect: &EntryMeta) -> Option<NetworkMetrics> {
        self.load_payload(key, "metrics", expect)
    }

    /// Persists a single-inference metrics row under `key`. Shorthand
    /// for [`store_payload`](Self::store_payload) with kind `"metrics"`.
    pub fn store(&self, key: u64, meta: &EntryMeta, metrics: &NetworkMetrics) {
        self.store_payload(key, "metrics", meta, metrics);
    }

    /// Loads the entry for `key`, validating it against `kind` and
    /// `expect` and decoding its payload as `T`.
    ///
    /// A hit refreshes the entry's last-access stamp. Corrupt or
    /// unknown-schema files are quarantined (renamed `*.bad`);
    /// kind/key-field mismatches (hash collision or stale config) and
    /// undecodable payloads read as a plain miss and are overwritten by
    /// the subsequent store.
    pub fn load_payload<T: Deserialize>(
        &self,
        key: u64,
        kind: &str,
        expect: &EntryMeta,
    ) -> Option<T> {
        let shard = shard_of(key);
        let _guard = self.locks[shard].lock().expect("shard lock poisoned");
        let dir = self.shard_dir(shard);
        let path = dir.join(entry_file_name(key));
        let mut manifest = self.read_manifest(shard);

        let loaded = self.read_entry(&path, &mut manifest, key);
        let hit = match loaded {
            Some(entry)
                if entry.kind == kind
                    && entry.accel == expect.accel
                    && entry.accel_key == expect.accel_key
                    && entry.workload == expect.workload
                    && entry.seed == expect.seed =>
            {
                match T::from_value(&entry.payload) {
                    Ok(payload) => {
                        let stamp = self.tick();
                        if let Some(rec) = manifest_entry_mut(&mut manifest, key) {
                            rec.last_access = stamp;
                        }
                        Some(payload)
                    }
                    Err(_) => None,
                }
            }
            _ => None,
        };
        self.write_manifest(shard, &manifest);
        if hit.is_some() {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Persists `payload` under `key` with the given row `kind`,
    /// evicting least-recently-used entries if the shard's byte slice
    /// would be exceeded. Failures are swallowed: the cache is an
    /// optimization, not a correctness requirement.
    pub fn store_payload<T: Serialize>(&self, key: u64, kind: &str, meta: &EntryMeta, payload: &T) {
        let entry = EntryFile {
            schema: SCHEMA_VERSION,
            kind: kind.to_string(),
            accel: meta.accel.clone(),
            accel_key: meta.accel_key,
            workload: meta.workload.clone(),
            seed: meta.seed,
            payload: payload.to_value(),
        };
        let text = serde::json::to_string(&entry);
        let bytes = text.len() as u64;

        let shard = shard_of(key);
        let _guard = self.locks[shard].lock().expect("shard lock poisoned");
        let dir = self.shard_dir(shard);
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(entry_file_name(key));
        if !atomic_write(&path, text.as_bytes()) {
            return;
        }
        self.counters.writes.fetch_add(1, Ordering::Relaxed);

        let mut manifest = self.read_manifest(shard);
        let stamp = self.tick();
        match manifest_entry_mut(&mut manifest, key) {
            Some(rec) => {
                rec.bytes = bytes;
                rec.last_access = stamp;
            }
            None => manifest.entries.push(ManifestEntry {
                key: format!("{key:016x}"),
                bytes,
                last_access: stamp,
            }),
        }
        self.evict_over_limit(&dir, &mut manifest);
        self.write_manifest(shard, &manifest);
    }

    /// Live entry count and byte total, summed over all shard manifests.
    pub fn usage(&self) -> StoreUsage {
        let mut usage = StoreUsage::default();
        for shard in 0..SHARD_COUNT {
            let _guard = self.locks[shard].lock().expect("shard lock poisoned");
            let manifest = self.read_manifest(shard);
            usage.entries += manifest.entries.len();
            usage.bytes += manifest.entries.iter().map(|e| e.bytes).sum::<u64>();
        }
        usage
    }

    /// Integrity check for tests and tooling: every manifest record must
    /// point at an existing file of the recorded size, and every bounded
    /// shard must hold its byte slice.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify(&self) -> Result<StoreUsage, String> {
        let mut usage = StoreUsage::default();
        for shard in 0..SHARD_COUNT {
            let _guard = self.locks[shard].lock().expect("shard lock poisoned");
            let dir = self.shard_dir(shard);
            let manifest = self.read_manifest(shard);
            let mut shard_bytes = 0u64;
            for rec in &manifest.entries {
                let path = dir.join(format!("{}.json", rec.key));
                let meta = std::fs::metadata(&path)
                    .map_err(|_| format!("manifest references missing file {}", path.display()))?;
                if meta.len() != rec.bytes {
                    return Err(format!(
                        "manifest records {} bytes for {} but the file holds {}",
                        rec.bytes,
                        path.display(),
                        meta.len()
                    ));
                }
                shard_bytes += rec.bytes;
            }
            if let Some(limit) = self.shard_limit {
                if shard_bytes > limit {
                    return Err(format!(
                        "shard {shard:x} holds {shard_bytes} bytes, over its {limit}-byte slice"
                    ));
                }
            }
            usage.entries += manifest.entries.len();
            usage.bytes += shard_bytes;
        }
        Ok(usage)
    }

    /// Path the entry for `key` lives at (whether or not it exists).
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.shard_dir(shard_of(key)).join(entry_file_name(key))
    }

    /// Reads and validates the entry file at `path`, quarantining it on
    /// corruption or schema mismatch, adopting it into `manifest` if it
    /// was untracked. Returns the parsed entry if structurally valid.
    fn read_entry(&self, path: &Path, manifest: &mut Manifest, key: u64) -> Option<EntryFile> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => {
                // File gone (evicted by a peer, or never written): make
                // sure the manifest does not keep referencing it.
                manifest_remove(manifest, key);
                return None;
            }
        };
        let parsed: Result<EntryFile, _> = serde::json::from_str(&text);
        let entry = match parsed {
            Ok(e) if e.schema == SCHEMA_VERSION => e,
            // Corrupt, truncated, or from an unknown schema version:
            // quarantine so the next run does not trip on it again.
            _ => {
                self.quarantine(path);
                manifest_remove(manifest, key);
                return None;
            }
        };
        if manifest_entry_mut(manifest, key).is_none() {
            manifest.entries.push(ManifestEntry {
                key: format!("{key:016x}"),
                bytes: text.len() as u64,
                last_access: 0,
            });
            self.counters.adopted.fetch_add(1, Ordering::Relaxed);
        }
        Some(entry)
    }

    /// Renames a poisoned entry to `<name>.bad` (best effort).
    fn quarantine(&self, path: &Path) {
        let bad = path.with_extension("json.bad");
        if std::fs::rename(path, &bad).is_ok() {
            self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evicts least-recently-used entries until the shard fits its byte
    /// slice. The freshly written entry is eligible too: a bound smaller
    /// than one entry means the store holds nothing, not "a bit over".
    fn evict_over_limit(&self, dir: &Path, manifest: &mut Manifest) {
        let Some(limit) = self.shard_limit else {
            return;
        };
        let mut total: u64 = manifest.entries.iter().map(|e| e.bytes).sum();
        while total > limit && !manifest.entries.is_empty() {
            let (idx, _) = manifest
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_access)
                .expect("non-empty manifest");
            let victim = manifest.entries.swap_remove(idx);
            let _ = std::fs::remove_file(dir.join(format!("{}.json", victim.key)));
            total -= victim.bytes;
            self.counters
                .evicted_entries
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .evicted_bytes
                .fetch_add(victim.bytes, Ordering::Relaxed);
        }
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("{shard:x}"))
    }

    /// Reads a shard manifest; a missing or unreadable manifest rebuilds
    /// itself from the entry files present in the directory (all marked
    /// least-recently-used), so a lost manifest degrades to a cold-ish
    /// shard instead of an unusable one.
    fn read_manifest(&self, shard: usize) -> Manifest {
        let dir = self.shard_dir(shard);
        let path = dir.join("manifest.json");
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(m) = serde::json::from_str::<Manifest>(&text) {
                if m.schema == MANIFEST_SCHEMA {
                    return m;
                }
            }
        }
        let mut manifest = Manifest {
            schema: MANIFEST_SCHEMA,
            entries: Vec::new(),
        };
        if let Ok(dir_iter) = std::fs::read_dir(&dir) {
            for file in dir_iter.flatten() {
                let name = file.file_name();
                let Some(key) = entry_key_of(&name.to_string_lossy()) else {
                    continue;
                };
                let Ok(meta) = file.metadata() else { continue };
                manifest.entries.push(ManifestEntry {
                    key: format!("{key:016x}"),
                    bytes: meta.len(),
                    last_access: 0,
                });
            }
        }
        manifest
    }

    fn write_manifest(&self, shard: usize, manifest: &Manifest) {
        let dir = self.shard_dir(shard);
        let _ = std::fs::create_dir_all(&dir);
        atomic_write(
            &dir.join("manifest.json"),
            serde::json::to_string(manifest).as_bytes(),
        );
    }

    /// Next logical-clock stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts the logical clock past every stamp already on disk, so
    /// fresh accesses sort after entries from previous processes.
    fn init_clock(&self) {
        let mut max = 0;
        for shard in 0..SHARD_COUNT {
            let manifest = self.read_manifest(shard);
            for rec in &manifest.entries {
                max = max.max(rec.last_access);
            }
        }
        self.clock.store(max + 1, Ordering::Relaxed);
    }

    /// Moves legacy flat-layout entries (`<root>/<hash>.json`) into
    /// their shard directories so pre-sharding caches stay warm.
    fn migrate_flat_layout(&self) {
        let Ok(dir_iter) = std::fs::read_dir(&self.root) else {
            return;
        };
        let mut moved: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for file in dir_iter.flatten() {
            if !file.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let name = file.file_name();
            let Some(key) = entry_key_of(&name.to_string_lossy()) else {
                continue;
            };
            let shard = shard_of(key);
            let dest_dir = self.shard_dir(shard);
            let _ = std::fs::create_dir_all(&dest_dir);
            let dest = dest_dir.join(entry_file_name(key));
            if let Ok(meta) = file.metadata() {
                if std::fs::rename(file.path(), &dest).is_ok() {
                    moved.entry(shard).or_default().push((key, meta.len()));
                }
            }
        }
        for (shard, entries) in moved {
            let _guard = self.locks[shard].lock().expect("shard lock poisoned");
            let mut manifest = self.read_manifest(shard);
            for (key, bytes) in entries {
                if manifest_entry_mut(&mut manifest, key).is_none() {
                    manifest.entries.push(ManifestEntry {
                        key: format!("{key:016x}"),
                        bytes,
                        last_access: 0,
                    });
                }
            }
            self.write_manifest(shard, &manifest);
        }
    }
}

impl fmt::Display for StoreCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} writes / {} evicted / {} quarantined",
            self.hits, self.misses, self.writes, self.evicted_entries, self.quarantined
        )
    }
}

/// Shard index of a key: its top hex nibble.
fn shard_of(key: u64) -> usize {
    (key >> 60) as usize
}

/// File name of an entry (`<016x>.json`).
fn entry_file_name(key: u64) -> String {
    format!("{key:016x}.json")
}

/// Parses `<016x>.json` back into its key; `None` for anything else
/// (manifests, quarantined files, temp files).
fn entry_key_of(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(".json")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn manifest_entry_mut(manifest: &mut Manifest, key: u64) -> Option<&mut ManifestEntry> {
    let hex = format!("{key:016x}");
    manifest.entries.iter_mut().find(|e| e.key == hex)
}

fn manifest_remove(manifest: &mut Manifest, key: u64) {
    let hex = format!("{key:016x}");
    manifest.entries.retain(|e| e.key != hex);
}

/// Writes `bytes` to `path` via a uniquely named temp file and an atomic
/// rename; returns whether the write landed.
fn atomic_write(path: &Path, bytes: &[u8]) -> bool {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), seq));
    if std::fs::write(&tmp, bytes).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

/// Parses a byte-size string: plain bytes, or with a `k`/`m`/`g` suffix
/// (optionally followed by `b`), case-insensitive: `65536`, `64k`,
/// `512MB`, `2g`.
pub fn parse_byte_size(text: &str) -> Option<u64> {
    let t = text.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = t.strip_suffix("kb").or_else(|| t.strip_suffix('k')) {
        (d, 1u64 << 10)
    } else if let Some(d) = t.strip_suffix("mb").or_else(|| t.strip_suffix('m')) {
        (d, 1 << 20)
    } else if let Some(d) = t.strip_suffix("gb").or_else(|| t.strip_suffix('g')) {
        (d, 1 << 30)
    } else {
        (t.as_str(), 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_sim::metrics::{NetworkMetrics, RunMetrics};
    use std::sync::atomic::AtomicU32;

    fn scratch_root(tag: &str) -> PathBuf {
        static NONCE: AtomicU32 = AtomicU32::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("isos-cache-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(i: u64) -> EntryMeta {
        EntryMeta {
            accel: "testaccel".into(),
            accel_key: 42,
            workload: WorkloadId::new(format!("W{i}")),
            seed: 7,
        }
    }

    fn metrics(cycles: u64) -> NetworkMetrics {
        NetworkMetrics {
            total: RunMetrics {
                cycles,
                ..RunMetrics::default()
            },
            ..NetworkMetrics::default()
        }
    }

    #[test]
    fn store_load_roundtrip_and_counters() {
        let store = CacheStore::open(scratch_root("roundtrip"), None);
        let m = metrics(123);
        store.store(0xabcd, &meta(1), &m);
        assert_eq!(store.load(0xabcd, &meta(1)), Some(m));
        // Different expectation (other workload): miss, no quarantine.
        assert_eq!(store.load(0xabcd, &meta(2)), None);
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.writes, c.quarantined), (1, 1, 1, 0));
        assert_eq!(store.usage().entries, 1);
    }

    #[test]
    fn keys_spread_across_shard_directories() {
        let root = scratch_root("shards");
        let store = CacheStore::open(&root, None);
        for i in 0..SHARD_COUNT as u64 {
            let key = i << 60 | 0x1111;
            store.store(key, &meta(i), &metrics(i));
        }
        for shard in 0..SHARD_COUNT {
            let dir = root.join(format!("{shard:x}"));
            assert!(dir.join("manifest.json").is_file(), "shard {shard:x}");
            let entries = std::fs::read_dir(&dir)
                .unwrap()
                .filter(|f| {
                    entry_key_of(&f.as_ref().unwrap().file_name().to_string_lossy()).is_some()
                })
                .count();
            assert_eq!(entries, 1, "shard {shard:x} holds exactly its key");
        }
        assert_eq!(store.verify().unwrap().entries, SHARD_COUNT);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_store_self_heals() {
        let store = CacheStore::open(scratch_root("quarantine"), None);
        let key = 0x7777;
        store.store(key, &meta(1), &metrics(9));
        let path = store.entry_path(key);
        std::fs::write(&path, "{ truncated garb").unwrap();

        // First load: quarantined, miss.
        assert_eq!(store.load(key, &meta(1)), None);
        assert!(!path.exists(), "poisoned entry removed from its slot");
        assert!(
            path.with_extension("json.bad").exists(),
            "poisoned entry preserved as *.bad"
        );
        assert_eq!(store.counters().quarantined, 1);
        store
            .verify()
            .expect("manifest consistent after quarantine");

        // Recompute-once: a single store heals the slot for good.
        store.store(key, &meta(1), &metrics(9));
        assert_eq!(store.load(key, &meta(1)), Some(metrics(9)));
        assert_eq!(store.counters().quarantined, 1, "no re-quarantine");
    }

    #[test]
    fn unknown_schema_entry_is_quarantined() {
        let store = CacheStore::open(scratch_root("schema"), None);
        let key = 0x1234_5678;
        store.store(key, &meta(1), &metrics(1));
        let path = store.entry_path(key);
        let text = std::fs::read_to_string(&path).unwrap();
        let future = text.replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 9),
            1,
        );
        assert_ne!(future, text);
        std::fs::write(&path, future).unwrap();
        assert_eq!(store.load(key, &meta(1)), None);
        assert!(path.with_extension("json.bad").exists());
        assert_eq!(store.counters().quarantined, 1);
    }

    #[test]
    fn lru_eviction_holds_the_byte_bound() {
        // One entry is ~160 bytes; a 16 KiB budget gives each shard a
        // 1 KiB slice, so a few entries per shard force evictions.
        let store = CacheStore::open(scratch_root("lru"), Some(16 * 1024));
        let shard_keys: Vec<u64> = (0..40).map(|i| (3u64 << 60) | i).collect();
        for (i, &key) in shard_keys.iter().enumerate() {
            store.store(key, &meta(i as u64), &metrics(i as u64));
        }
        let usage = store.verify().expect("bound + manifest invariants hold");
        assert!(usage.bytes <= 16 * 1024);
        assert!(store.counters().evicted_entries > 0, "evictions happened");
        // The most recently written key survived; the oldest did not.
        assert!(store.load(*shard_keys.last().unwrap(), &meta(39)).is_some());
        assert!(store.load(shard_keys[0], &meta(0)).is_none());
    }

    #[test]
    fn hits_refresh_recency() {
        // 4 KiB per shard ≈ 11 entries of ~345 bytes each.
        let store = CacheStore::open(scratch_root("recency"), Some(64 * 1024));
        let keyed = |i: u64| (5u64 << 60) | i;
        // Fill with 0..4, then keep touching key 0 while inserting more:
        // key 0 must survive the evictions that claim its cohort.
        for i in 0..4 {
            store.store(keyed(i), &meta(i), &metrics(i));
        }
        for i in 4..24 {
            assert!(store.load(keyed(0), &meta(0)).is_some(), "insert {i}");
            store.store(keyed(i), &meta(i), &metrics(i));
        }
        assert!(store.load(keyed(0), &meta(0)).is_some());
        assert!(store.load(keyed(1), &meta(1)).is_none(), "LRU victim");
    }

    #[test]
    fn flat_layout_entries_migrate_on_open() {
        let root = scratch_root("migrate");
        // Write through one store, then flatten its file back to the
        // legacy location and reopen.
        let store = CacheStore::open(&root, None);
        let key = 0xfeed_beef_dead_c0de;
        store.store(key, &meta(1), &metrics(77));
        let sharded = store.entry_path(key);
        let flat = root.join(entry_file_name(key));
        std::fs::rename(&sharded, &flat).unwrap();
        drop(store);

        let reopened = CacheStore::open(&root, None);
        assert!(!flat.exists(), "flat file moved into its shard");
        assert_eq!(reopened.load(key, &meta(1)), Some(metrics(77)));
        reopened.verify().expect("migrated store is consistent");
    }

    #[test]
    fn untracked_valid_file_is_adopted() {
        let root = scratch_root("adopt");
        let store = CacheStore::open(&root, None);
        let key = 0x42;
        store.store(key, &meta(1), &metrics(5));
        // Simulate a peer process that wrote the entry but whose
        // manifest update was lost.
        let manifest = root.join("0").join("manifest.json");
        std::fs::write(&manifest, "{\"schema\":1,\"entries\":[]}").unwrap();
        assert_eq!(store.load(key, &meta(1)), Some(metrics(5)));
        assert_eq!(store.counters().adopted, 1);
        store.verify().expect("adopted entry is tracked");
    }

    #[test]
    fn payload_kinds_do_not_alias() {
        let store = CacheStore::open(scratch_root("kinds"), None);
        store.store_payload(0x99, "stream", &meta(1), &metrics(4));
        // A metrics-kind load at the same key must not see the stream
        // row, and vice versa.
        assert_eq!(store.load(0x99, &meta(1)), None);
        assert_eq!(
            store.load_payload::<NetworkMetrics>(0x99, "stream", &meta(1)),
            Some(metrics(4))
        );
        assert_eq!(store.counters().quarantined, 0, "mismatch is a miss");
    }

    #[test]
    fn undecodable_payload_reads_as_a_miss() {
        let store = CacheStore::open(scratch_root("badpayload"), None);
        store.store_payload(0x55, "metrics", &meta(1), &42u64);
        assert_eq!(store.load(0x55, &meta(1)), None);
        assert_eq!(store.counters().quarantined, 0);
        // The subsequent store heals the slot.
        store.store(0x55, &meta(1), &metrics(6));
        assert_eq!(store.load(0x55, &meta(1)), Some(metrics(6)));
    }

    #[test]
    fn byte_size_parsing() {
        assert_eq!(parse_byte_size("65536"), Some(65536));
        assert_eq!(parse_byte_size("64k"), Some(64 << 10));
        assert_eq!(parse_byte_size("64KB"), Some(64 << 10));
        assert_eq!(parse_byte_size("3m"), Some(3 << 20));
        assert_eq!(parse_byte_size("2G"), Some(2 << 30));
        assert_eq!(parse_byte_size(" 8 k "), Some(8 << 10));
        assert_eq!(parse_byte_size("x"), None);
        assert_eq!(parse_byte_size(""), None);
    }
}
