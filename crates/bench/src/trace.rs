//! Tracing entry points for the bench binaries.
//!
//! Wraps `isos-trace` for suite use: resolve a model by name, run any
//! suite workload on it with an [`EventBuffer`] attached, and export the
//! recorded timeline as Perfetto JSON (`*.trace.json`), occupancy CSV
//! (`*.timeline.csv`), and a markdown stall summary (`*.stalls.md`)
//! under `results/traces/`. Tracing is opt-in: nothing here runs unless
//! a binary is asked for it (`trace_run`, or `suite_summary --trace`),
//! and traced metrics are bit-identical to untraced ones.

use std::io;
use std::path::{Path, PathBuf};

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::Workload;
use isos_sim::metrics::NetworkMetrics;
use isos_trace::export::{perfetto_json, stall_summary_md, timeline_csv};
use isos_trace::EventBuffer;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

/// Default output directory for exported traces.
pub const TRACE_DIR: &str = "results/traces";

/// The four default-configured suite models by name. Accepts the short
/// aliases `single` and `fused` alongside the canonical
/// [`Accelerator::name`]s.
pub fn accel_by_name(name: &str) -> Option<Box<dyn Accelerator>> {
    match name {
        "isosceles" => Some(Box::new(IsoscelesConfig::default())),
        "isosceles-single" | "single" => Some(Box::new(IsoscelesSingleConfig::default())),
        "sparten" => Some(Box::new(SpartenConfig::default())),
        "fused-layer" | "fused" => Some(Box::new(FusedLayerConfig::default())),
        _ => None,
    }
}

/// Canonical model names, in suite order.
pub const MODEL_NAMES: [&str; 4] = ["isosceles", "isosceles-single", "sparten", "fused-layer"];

/// Runs `workload` on `accel` with tracing enabled; returns the metrics
/// together with the recorded event buffer.
pub fn trace_workload(workload: &Workload, accel: &dyn Accelerator, seed: u64) -> TraceRun {
    let mut buf = EventBuffer::new();
    let metrics = accel.simulate_traced(&workload.network, seed, &mut buf);
    TraceRun {
        workload: workload.id.to_string(),
        model: accel.name().to_string(),
        metrics,
        buffer: buf,
    }
}

/// One traced simulation: the usual metrics plus the event stream behind
/// them.
pub struct TraceRun {
    /// Suite workload id (`"R81"`, ...).
    pub workload: String,
    /// Model name (`"isosceles"`, ...).
    pub model: String,
    /// The run's metrics — bit-identical to an untraced simulation.
    pub metrics: NetworkMetrics,
    /// Everything the model emitted.
    pub buffer: EventBuffer,
}

impl TraceRun {
    /// `<workload>-<model>` — the file stem the exporters use.
    pub fn stem(&self) -> String {
        format!("{}-{}", self.workload, self.model)
    }

    /// Display title (`"isosceles on R81"`).
    pub fn title(&self) -> String {
        format!("{} on {}", self.model, self.workload)
    }

    /// Writes all three exports under `dir` (created if missing) and
    /// returns the written paths: `<stem>.trace.json`,
    /// `<stem>.timeline.csv`, `<stem>.stalls.md`.
    pub fn export_all(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let stem = self.stem();
        let title = self.title();
        let outputs = [
            (
                format!("{stem}.trace.json"),
                perfetto_json(&self.buffer, &title),
            ),
            (format!("{stem}.timeline.csv"), timeline_csv(&self.buffer)),
            (
                format!("{stem}.stalls.md"),
                stall_summary_md(&self.buffer, &title),
            ),
        ];
        let mut paths = Vec::with_capacity(outputs.len());
        for (name, text) in outputs {
            let path = dir.join(name);
            std::fs::write(&path, text)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SEED;
    use isos_nn::models::suite_workload;

    #[test]
    fn accel_by_name_resolves_all_models_and_aliases() {
        for name in MODEL_NAMES {
            let a = accel_by_name(name).expect(name);
            assert_eq!(a.name(), name);
        }
        assert_eq!(accel_by_name("single").unwrap().name(), "isosceles-single");
        assert_eq!(accel_by_name("fused").unwrap().name(), "fused-layer");
        assert!(accel_by_name("eyeriss").is_none());
    }

    #[test]
    fn traced_run_matches_untraced_metrics_and_exports() {
        let w = suite_workload("G58", SEED);
        let accel = accel_by_name("sparten").unwrap();
        let run = trace_workload(&w, accel.as_ref(), SEED);
        assert_eq!(run.metrics, accel.simulate(&w.network, SEED));
        assert!(!run.buffer.is_empty());
        assert_eq!(run.stem(), "G58-sparten");

        let dir = std::env::temp_dir().join(format!("isos-trace-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = run.export_all(&dir).expect("export");
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(!text.trim().is_empty(), "{} is empty", p.display());
        }
        assert!(paths[0]
            .to_string_lossy()
            .ends_with("G58-sparten.trace.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
