//! CSV/markdown export of experiment results.
//!
//! Every figure harness prints human-readable tables; [`CsvTable`] writes
//! the same data as CSV (or markdown) under `results/` so plots can be
//! regenerated with any external tool (`cargo run -p isosceles-bench
//! --bin export_results`). [`Report`] wraps a finished suite run and
//! derives the standard tables from it, including the per-layer traffic
//! split behind the paper's Fig. 14-style analyses.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::suite::SuiteRow;

/// A CSV table in memory.
#[derive(Clone, Debug, Default)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let line = cells
                .iter()
                .map(|c| {
                    if c.contains([',', '"', '\n']) {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "{line}");
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table to `dir/name.csv`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders a GitHub-flavored markdown table (pipes in cells are
    /// escaped so column boundaries survive).
    pub fn to_markdown(&self) -> String {
        let escape = |c: &String| c.replace('|', "\\|").replace('\n', " ");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(&escape)
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| " --- ")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(&escape).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Writes the table to `dir/name.md`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_markdown(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.md"));
        std::fs::write(&path, self.to_markdown())?;
        Ok(path)
    }
}

/// A finished suite run plus the standard derived tables.
///
/// The whole-network tables repeat what the figure binaries print; the
/// per-layer table is new with the shared metrics layer: one row per
/// `(workload, accelerator, layer)` with the layer's cycle and traffic
/// split, exported as both CSV and markdown by [`Report::write_all`].
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// One row per suite workload, in paper figure order.
    pub rows: Vec<SuiteRow>,
}

impl Report {
    /// Wraps finished suite rows.
    pub fn new(rows: Vec<SuiteRow>) -> Self {
        Self { rows }
    }

    /// Whole-network summary: speedups and traffic ratios per workload.
    pub fn summary_table(&self) -> CsvTable {
        let mut t = CsvTable::new(&[
            "net",
            "isosceles_speedup_vs_sparten",
            "isosceles_speedup_vs_fused",
            "sparten_traffic_ratio",
        ]);
        for r in &self.rows {
            t.push_row(vec![
                r.id.to_string(),
                format!("{:.3}", r.speedup_vs_sparten()),
                format!("{:.3}", r.speedup_vs_fused()),
                format!("{:.3}", r.sparten_traffic_ratio()),
            ]);
        }
        t
    }

    /// Per-layer traffic split (the Fig. 14c decomposition at layer
    /// granularity): one row per `(workload, accelerator, layer)` with
    /// cycles, weight/activation bytes, and each layer's share of its
    /// network's total traffic.
    pub fn layer_traffic_table(&self) -> CsvTable {
        let mut t = CsvTable::new(&[
            "net",
            "accel",
            "layer",
            "cycles",
            "weight_bytes",
            "act_bytes",
            "traffic_share",
        ]);
        for r in &self.rows {
            for (accel, metrics) in r.models() {
                let net_total = metrics.total.total_traffic().max(f64::MIN_POSITIVE);
                for (layer, m) in &metrics.layers {
                    t.push_row(vec![
                        r.id.to_string(),
                        accel.to_string(),
                        layer.clone(),
                        m.cycles.to_string(),
                        format!("{:.1}", m.weight_traffic),
                        format!("{:.1}", m.act_traffic),
                        format!("{:.5}", m.total_traffic() / net_total),
                    ]);
                }
            }
        }
        t
    }

    /// Writes every derived table to `dir` as CSV, plus the per-layer
    /// traffic table as markdown; returns the written paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_all(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        Ok(vec![
            self.summary_table().write(dir, "suite_summary")?,
            self.layer_traffic_table().write(dir, "layer_traffic")?,
            self.layer_traffic_table()
                .write_markdown(dir, "layer_traffic")?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = CsvTable::new(&["net", "speedup"]);
        t.push(&["R96".to_string(), "4.9".to_string()]);
        assert_eq!(t.to_csv(), "net,speedup\nR96,4.9\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn quotes_cells_with_separators() {
        let mut t = CsvTable::new(&["a"]);
        t.push_row(vec!["x,y \"z\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"x,y \"\"z\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn markdown_renders_header_separator_and_escapes_pipes() {
        let mut t = CsvTable::new(&["net", "speedup"]);
        t.push(&["R96", "4.9"]);
        t.push_row(vec!["a|b".into(), "multi\nline".into()]);
        assert_eq!(
            t.to_markdown(),
            "| net | speedup |\n\
             | --- | --- |\n\
             | R96 | 4.9 |\n\
             | a\\|b | multi line |\n"
        );
    }

    #[test]
    fn writes_markdown_to_disk() {
        let dir = std::env::temp_dir().join("isos-report-md-test");
        let mut t = CsvTable::new(&["x"]);
        t.push(&[1]);
        let path = t.write_markdown(&dir, "t").unwrap();
        assert!(path.ends_with("t.md"));
        assert_eq!(
            std::fs::read_to_string(path).unwrap(),
            "| x |\n| --- |\n| 1 |\n"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("isos-report-test");
        let mut t = CsvTable::new(&["x"]);
        t.push(&[1]);
        let path = t.write(&dir, "t").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn report_exports_per_layer_rows_for_every_model() {
        use crate::engine::WorkloadId;
        use crate::suite::SEED;
        use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
        use isosceles::accel::Accelerator;
        use isosceles::IsoscelesConfig;

        let w = isos_nn::models::suite_workload("G58", SEED);
        let row = SuiteRow {
            id: WorkloadId::new(w.id),
            isosceles: IsoscelesConfig::default().simulate(&w.network, SEED),
            single: IsoscelesSingleConfig::default().simulate(&w.network, SEED),
            sparten: SpartenConfig::default().simulate(&w.network, SEED),
            fused: FusedLayerConfig::default().simulate(&w.network, SEED),
        };
        let report = Report::new(vec![row]);

        assert_eq!(report.summary_table().len(), 1);
        let layers = report.layer_traffic_table();
        let expected: usize = report.rows[0]
            .models()
            .iter()
            .map(|(_, m)| m.layers.len())
            .sum();
        assert_eq!(layers.len(), expected);
        assert!(expected >= 4, "each model contributes layer rows");

        // Per model, the traffic shares sum to ~1.
        let csv = layers.to_csv();
        for accel in ["isosceles", "sparten", "fused-layer"] {
            let share: f64 = csv
                .lines()
                .filter(|l| l.contains(&format!(",{accel},")))
                .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
                .sum();
            assert!((share - 1.0).abs() < 1e-2, "{accel} shares sum to {share}");
        }

        let dir = std::env::temp_dir().join("isos-report-perlayer-test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = report.write_all(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.exists()));
        let _ = std::fs::remove_dir_all(dir);
    }
}
