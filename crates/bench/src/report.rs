//! CSV export of experiment results.
//!
//! Every figure harness prints human-readable tables; this module writes
//! the same data as CSV under `results/` so plots can be regenerated with
//! any external tool (`cargo run -p isosceles-bench --bin export_results`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A CSV table in memory.
#[derive(Clone, Debug, Default)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let line = cells
                .iter()
                .map(|c| {
                    if c.contains([',', '"', '\n']) {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "{line}");
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the table to `dir/name.csv`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders a GitHub-flavored markdown table (pipes in cells are
    /// escaped so column boundaries survive).
    pub fn to_markdown(&self) -> String {
        let escape = |c: &String| c.replace('|', "\\|").replace('\n', " ");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(&escape)
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| " --- ")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(&escape).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Writes the table to `dir/name.md`, creating `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_markdown(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.md"));
        std::fs::write(&path, self.to_markdown())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = CsvTable::new(&["net", "speedup"]);
        t.push(&["R96".to_string(), "4.9".to_string()]);
        assert_eq!(t.to_csv(), "net,speedup\nR96,4.9\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn quotes_cells_with_separators() {
        let mut t = CsvTable::new(&["a"]);
        t.push_row(vec!["x,y \"z\"".into()]);
        assert_eq!(t.to_csv(), "a\n\"x,y \"\"z\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn markdown_renders_header_separator_and_escapes_pipes() {
        let mut t = CsvTable::new(&["net", "speedup"]);
        t.push(&["R96", "4.9"]);
        t.push_row(vec!["a|b".into(), "multi\nline".into()]);
        assert_eq!(
            t.to_markdown(),
            "| net | speedup |\n\
             | --- | --- |\n\
             | R96 | 4.9 |\n\
             | a\\|b | multi line |\n"
        );
    }

    #[test]
    fn writes_markdown_to_disk() {
        let dir = std::env::temp_dir().join("isos-report-md-test");
        let mut t = CsvTable::new(&["x"]);
        t.push(&[1]);
        let path = t.write_markdown(&dir, "t").unwrap();
        assert!(path.ends_with("t.md"));
        assert_eq!(
            std::fs::read_to_string(path).unwrap(),
            "| x |\n| --- |\n| 1 |\n"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("isos-report-test");
        let mut t = CsvTable::new(&["x"]);
        t.push(&[1]);
        let path = t.write(&dir, "t").unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
