//! Shared experiment data model: the paper's 11-CNN suite results on all
//! four accelerator models, as produced by the
//! [`engine`](crate::engine)'s parallel, cached driver.

use isosceles::accel::Accelerator;
use isosceles::metrics::NetworkMetrics;
use serde::{Deserialize, Serialize};

use crate::engine::{EngineOptions, SuiteEngine, WorkloadId};

/// Default RNG seed for all synthetic sparsity profiles.
pub const SEED: u64 = 20230225; // HPCA 2023 conference date

/// One workload's results on every accelerator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuiteRow {
    /// Workload id (`R96`, `M75`, ...).
    pub id: WorkloadId,
    /// Full ISOSceles (inter-layer pipelining).
    pub isosceles: NetworkMetrics,
    /// ISOSceles-single (Fig. 18 ablation).
    pub single: NetworkMetrics,
    /// SparTen + GoSPA filtering.
    pub sparten: NetworkMetrics,
    /// Fused-Layer (dense).
    pub fused: NetworkMetrics,
}

impl SuiteRow {
    /// Speedup of ISOSceles over Fused-Layer (Fig. 14a, right bars).
    pub fn speedup_vs_fused(&self) -> f64 {
        self.fused.total.cycles as f64 / self.isosceles.total.cycles as f64
    }

    /// Speedup of SparTen over Fused-Layer (Fig. 14a, left bars).
    pub fn sparten_speedup_vs_fused(&self) -> f64 {
        self.fused.total.cycles as f64 / self.sparten.total.cycles as f64
    }

    /// Speedup of ISOSceles over SparTen (the headline gmean 4.3x).
    pub fn speedup_vs_sparten(&self) -> f64 {
        self.sparten.total.cycles as f64 / self.isosceles.total.cycles as f64
    }

    /// Traffic of ISOSceles normalized to Fused-Layer (Fig. 14c).
    pub fn traffic_vs_fused(&self) -> f64 {
        self.isosceles.total.total_traffic() / self.fused.total.total_traffic()
    }

    /// Traffic of SparTen normalized to ISOSceles (the headline 4.7x).
    pub fn sparten_traffic_ratio(&self) -> f64 {
        self.sparten.total.total_traffic() / self.isosceles.total.total_traffic()
    }
}

/// A serial, cache-less engine for the deprecated wrappers: keeps the old
/// free functions pure (no disk writes, no threads) while routing them
/// through the same code path as everything else.
fn compat_engine() -> SuiteEngine {
    SuiteEngine::new(EngineOptions {
        threads: 1,
        use_cache: false,
        quiet: true,
        ..EngineOptions::default()
    })
}

/// Runs one workload on all four models.
#[deprecated(
    since = "0.1.0",
    note = "use `engine::SuiteEngine` (parallel, cached, and instrumented)"
)]
pub fn run_workload(w: &isos_nn::models::Workload, seed: u64) -> SuiteRow {
    use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
    use isosceles::IsoscelesConfig;
    SuiteRow {
        id: WorkloadId::new(w.id),
        isosceles: IsoscelesConfig::default().simulate(&w.network, seed),
        single: IsoscelesSingleConfig::default().simulate(&w.network, seed),
        sparten: SpartenConfig::default().simulate(&w.network, seed),
        fused: FusedLayerConfig::default().simulate(&w.network, seed),
    }
}

/// Runs the full 11-CNN suite, in the paper's figure order.
#[deprecated(
    since = "0.1.0",
    note = "use `engine::SuiteEngine::run_suite` (parallel, cached, and instrumented)"
)]
pub fn run_suite(seed: u64) -> Vec<SuiteRow> {
    compat_engine().run_suite(seed).rows
}

/// Formats a bar-style text row for harness output.
pub fn fmt_row(label: &str, values: &[(&str, f64)]) -> String {
    let mut s = format!("{label:<28}");
    for (id, v) in values {
        s.push_str(&format!(" {id}={v:<8.2}"));
    }
    s
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use isos_nn::models::suite_workload;

    #[test]
    fn workload_row_has_consistent_relations() {
        let w = suite_workload("G58", SEED);
        let row = run_workload(&w, SEED);
        // Cross-metric identities.
        assert!(
            (row.speedup_vs_fused() / row.sparten_speedup_vs_fused() - row.speedup_vs_sparten())
                .abs()
                < 1e-9
        );
        assert!(row.isosceles.total.cycles > 0);
        assert!(row.single.total.cycles >= row.isosceles.total.cycles);
    }

    #[test]
    fn suite_order_matches_paper_figures() {
        let rows = run_suite(SEED);
        let ids: Vec<&str> = rows.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89"]
        );
    }

    #[test]
    fn deprecated_wrapper_matches_engine_row() {
        let w = suite_workload("G58", SEED);
        let direct = run_workload(&w, SEED);
        let engine = compat_engine().run_suite(SEED);
        let from_engine = engine
            .rows
            .iter()
            .find(|r| r.id.as_str() == "G58")
            .expect("G58 in suite");
        assert_eq!(
            serde::json::to_string(&direct),
            serde::json::to_string(from_engine)
        );
    }

    #[test]
    fn suite_row_roundtrips_through_json() {
        let w = suite_workload("G58", SEED);
        let row = run_workload(&w, SEED);
        let text = serde::json::to_string(&row);
        let back: SuiteRow = serde::json::from_str(&text).expect("parse");
        assert_eq!(text, serde::json::to_string(&back));
    }

    #[test]
    fn fmt_row_aligns_labels() {
        let s = fmt_row("label", &[("a", 1.0), ("b", 2.5)]);
        assert!(s.starts_with("label"));
        assert!(s.contains("a=1"));
        assert!(s.contains("b=2.5"));
    }
}
