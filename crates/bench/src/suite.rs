//! Shared experiment driver: runs the paper's 11-CNN suite on all three
//! accelerator models and collects the numbers every figure draws from.

use isos_baselines::{
    simulate_fused_layer, simulate_isosceles_single, simulate_sparten, FusedLayerConfig,
    SpartenConfig,
};
use isos_nn::models::{paper_suite, Workload};
use isosceles::arch::simulate_network;
use isosceles::mapping::ExecMode;
use isosceles::metrics::NetworkMetrics;
use isosceles::IsoscelesConfig;

/// Default RNG seed for all synthetic sparsity profiles.
pub const SEED: u64 = 20230225; // HPCA 2023 conference date

/// One workload's results on every accelerator.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// Workload id (`R96`, `M75`, ...).
    pub id: &'static str,
    /// Full ISOSceles (inter-layer pipelining).
    pub isosceles: NetworkMetrics,
    /// ISOSceles-single (Fig. 18 ablation).
    pub single: NetworkMetrics,
    /// SparTen + GoSPA filtering.
    pub sparten: NetworkMetrics,
    /// Fused-Layer (dense).
    pub fused: NetworkMetrics,
}

impl SuiteRow {
    /// Speedup of ISOSceles over Fused-Layer (Fig. 14a, right bars).
    pub fn speedup_vs_fused(&self) -> f64 {
        self.fused.total.cycles as f64 / self.isosceles.total.cycles as f64
    }

    /// Speedup of SparTen over Fused-Layer (Fig. 14a, left bars).
    pub fn sparten_speedup_vs_fused(&self) -> f64 {
        self.fused.total.cycles as f64 / self.sparten.total.cycles as f64
    }

    /// Speedup of ISOSceles over SparTen (the headline gmean 4.3x).
    pub fn speedup_vs_sparten(&self) -> f64 {
        self.sparten.total.cycles as f64 / self.isosceles.total.cycles as f64
    }

    /// Traffic of ISOSceles normalized to Fused-Layer (Fig. 14c).
    pub fn traffic_vs_fused(&self) -> f64 {
        self.isosceles.total.total_traffic() / self.fused.total.total_traffic()
    }

    /// Traffic of SparTen normalized to ISOSceles (the headline 4.7x).
    pub fn sparten_traffic_ratio(&self) -> f64 {
        self.sparten.total.total_traffic() / self.isosceles.total.total_traffic()
    }
}

/// Runs one workload on all four models.
pub fn run_workload(w: &Workload, seed: u64) -> SuiteRow {
    let cfg = IsoscelesConfig::default();
    SuiteRow {
        id: w.id,
        isosceles: simulate_network(&w.network, &cfg, ExecMode::Pipelined, seed),
        single: simulate_isosceles_single(&w.network, &cfg, seed),
        sparten: simulate_sparten(&w.network, &SpartenConfig::default()),
        fused: simulate_fused_layer(&w.network, &FusedLayerConfig::default()),
    }
}

/// Runs the full 11-CNN suite, in the paper's figure order.
pub fn run_suite(seed: u64) -> Vec<SuiteRow> {
    paper_suite(seed)
        .iter()
        .map(|w| run_workload(w, seed))
        .collect()
}

/// Formats a bar-style text row for harness output.
pub fn fmt_row(label: &str, values: &[(&str, f64)]) -> String {
    let mut s = format!("{label:<28}");
    for (id, v) in values {
        s.push_str(&format!(" {id}={v:<8.2}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::suite_workload;

    #[test]
    fn workload_row_has_consistent_relations() {
        let w = suite_workload("G58", SEED);
        let row = run_workload(&w, SEED);
        // Cross-metric identities.
        assert!(
            (row.speedup_vs_fused() / row.sparten_speedup_vs_fused() - row.speedup_vs_sparten())
                .abs()
                < 1e-9
        );
        assert!(row.isosceles.total.cycles > 0);
        assert!(row.single.total.cycles >= row.isosceles.total.cycles);
    }

    #[test]
    fn suite_order_matches_paper_figures() {
        let rows = run_suite(SEED);
        let ids: Vec<&str> = rows.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec!["R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89"]
        );
    }

    #[test]
    fn fmt_row_aligns_labels() {
        let s = fmt_row("label", &[("a", 1.0), ("b", 2.5)]);
        assert!(s.starts_with("label"));
        assert!(s.contains("a=1"));
        assert!(s.contains("b=2.5"));
    }
}
