//! Shared experiment data model: the paper's 11-CNN suite results on all
//! four accelerator models, as produced by the
//! [`engine`](crate::engine)'s parallel, cached driver.

use isos_sim::metrics::NetworkMetrics;
use serde::{Deserialize, Serialize};

use crate::engine::WorkloadId;

/// Default RNG seed for all synthetic sparsity profiles.
pub const SEED: u64 = 20230225; // HPCA 2023 conference date

/// One workload's results on every accelerator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuiteRow {
    /// Workload id (`R96`, `M75`, ...).
    pub id: WorkloadId,
    /// Full ISOSceles (inter-layer pipelining).
    pub isosceles: NetworkMetrics,
    /// ISOSceles-single (Fig. 18 ablation).
    pub single: NetworkMetrics,
    /// SparTen + GoSPA filtering.
    pub sparten: NetworkMetrics,
    /// Fused-Layer (dense).
    pub fused: NetworkMetrics,
}

impl SuiteRow {
    /// Speedup of ISOSceles over Fused-Layer (Fig. 14a, right bars).
    pub fn speedup_vs_fused(&self) -> f64 {
        self.fused.total.cycles as f64 / self.isosceles.total.cycles as f64
    }

    /// Speedup of SparTen over Fused-Layer (Fig. 14a, left bars).
    pub fn sparten_speedup_vs_fused(&self) -> f64 {
        self.fused.total.cycles as f64 / self.sparten.total.cycles as f64
    }

    /// Speedup of ISOSceles over SparTen (the headline gmean 4.3x).
    pub fn speedup_vs_sparten(&self) -> f64 {
        self.sparten.total.cycles as f64 / self.isosceles.total.cycles as f64
    }

    /// Traffic of ISOSceles normalized to Fused-Layer (Fig. 14c).
    pub fn traffic_vs_fused(&self) -> f64 {
        self.isosceles.total.total_traffic() / self.fused.total.total_traffic()
    }

    /// Traffic of SparTen normalized to ISOSceles (the headline 4.7x).
    pub fn sparten_traffic_ratio(&self) -> f64 {
        self.sparten.total.total_traffic() / self.isosceles.total.total_traffic()
    }

    /// The four `(accelerator name, metrics)` pairs of this row, in the
    /// standard figure order (for exporters that iterate models).
    pub fn models(&self) -> [(&'static str, &NetworkMetrics); 4] {
        [
            ("isosceles", &self.isosceles),
            ("isosceles-single", &self.single),
            ("sparten", &self.sparten),
            ("fused-layer", &self.fused),
        ]
    }
}

/// Formats a bar-style text row for harness output.
pub fn fmt_row(label: &str, values: &[(&str, f64)]) -> String {
    let mut s = format!("{label:<28}");
    for (id, v) in values {
        s.push_str(&format!(" {id}={v:<8.2}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
    use isos_nn::models::suite_workload;
    use isosceles::accel::Accelerator;
    use isosceles::IsoscelesConfig;

    /// One workload run directly through the `Accelerator` trait (the
    /// engine does the same per job, minus caching/threads).
    fn trait_row(id: &str) -> SuiteRow {
        let w = suite_workload(id, SEED);
        SuiteRow {
            id: WorkloadId::new(w.id),
            isosceles: IsoscelesConfig::default().simulate(&w.network, SEED),
            single: IsoscelesSingleConfig::default().simulate(&w.network, SEED),
            sparten: SpartenConfig::default().simulate(&w.network, SEED),
            fused: FusedLayerConfig::default().simulate(&w.network, SEED),
        }
    }

    #[test]
    fn workload_row_has_consistent_relations() {
        let row = trait_row("G58");
        // Cross-metric identities.
        assert!(
            (row.speedup_vs_fused() / row.sparten_speedup_vs_fused() - row.speedup_vs_sparten())
                .abs()
                < 1e-9
        );
        assert!(row.isosceles.total.cycles > 0);
        assert!(row.single.total.cycles >= row.isosceles.total.cycles);
    }

    #[test]
    fn models_iterates_figure_order() {
        let row = trait_row("G58");
        let names: Vec<&str> = row.models().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["isosceles", "isosceles-single", "sparten", "fused-layer"]
        );
        assert_eq!(row.models()[0].1.total, row.isosceles.total);
        // Every model populated the per-layer breakdown.
        for (name, m) in row.models() {
            assert!(!m.layers.is_empty(), "{name} has no layer breakdown");
        }
    }

    #[test]
    fn suite_row_roundtrips_through_json() {
        let row = trait_row("G58");
        let text = serde::json::to_string(&row);
        let back: SuiteRow = serde::json::from_str(&text).expect("parse");
        assert_eq!(text, serde::json::to_string(&back));
    }

    #[test]
    fn fmt_row_aligns_labels() {
        let s = fmt_row("label", &[("a", 1.0), ("b", 2.5)]);
        assert!(s.starts_with("label"));
        assert!(s.contains("a=1"));
        assert!(s.contains("b=2.5"));
    }
}
