//! The parallel, cached suite engine.
//!
//! Every harness binary used to call an ad-hoc serial `run_suite()`; they
//! now share this engine, which fans the 11-workload × 4-accelerator job
//! matrix out over a scoped worker pool and memoizes finished
//! [`NetworkMetrics`] in a content-addressed on-disk cache:
//!
//! - **Parallelism**: jobs are independent `(workload, accelerator)`
//!   pairs pulled from a shared counter by `--threads` /
//!   `ISOS_THREADS` worker threads (default: available parallelism).
//!   Results are assembled by job index, so output is bit-identical to a
//!   serial run regardless of completion order.
//! - **Caching**: each job's metrics land in the sharded, LRU-bounded
//!   [`CacheStore`] under `results/cache/`,
//!   keyed by a stable FNV-1a hash of the accelerator's
//!   [`cache_key`](Accelerator::cache_key), the workload id, the seed,
//!   and [`SCHEMA_VERSION`]. Entries self-describe those key fields and
//!   are revalidated on load; corrupt or stale files are quarantined
//!   and recomputed. Disable with `--no-cache` / `ISOS_NO_CACHE`,
//!   relocate with `ISOS_CACHE_DIR`, bound with `--cache-bytes` /
//!   `ISOS_CACHE_BYTES`.
//! - **Single-flight dedup**: concurrent identical jobs (same
//!   accelerator config, workload, and seed) cost exactly one
//!   simulation — the first claimant computes, every other racer waits
//!   on the in-flight slot and receives the same metrics, recorded as
//!   `deduped` rather than recomputed.
//! - **Accounting**: per-job wall time plus hit/miss/dedup counters,
//!   printed as a one-line summary on stderr after each run.
//!
//! # Examples
//!
//! ```no_run
//! use isosceles_bench::engine::SuiteEngine;
//! use isosceles_bench::suite::SEED;
//! let run = SuiteEngine::from_env().run_suite(SEED);
//! assert_eq!(run.rows.len(), 11);
//! eprintln!("{}", run.stats.summary());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, OnceLock};
use std::time::Instant;

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::{paper_suite, Workload};
use isos_sim::metrics::NetworkMetrics;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cache::{parse_byte_size, CacheStore, EntryMeta};
use crate::suite::SuiteRow;

/// Version of the cache entry layout. Bump on any change to
/// [`NetworkMetrics`] serialization or to the key derivation; old entries
/// then read as stale and are recomputed.
///
/// v2: `NetworkMetrics` gained the per-layer breakdown (`layers`).
/// v3: entries gained the `kind` discriminant and `payload` envelope so
/// streaming rows (`StreamMetrics`) share the store with
/// single-inference rows.
pub const SCHEMA_VERSION: u32 = 3;

/// Owned workload identifier (`"R96"`, `"M75"`, ...).
///
/// Replaces the `&'static str` ids threaded through earlier suite code so
/// rows (and cache entries) can be serialized and deserialized without
/// leaking strings.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkloadId(String);

impl WorkloadId {
    /// Creates an id from any string-ish value.
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The id as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for WorkloadId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<WorkloadId> for String {
    fn from(id: WorkloadId) -> Self {
        id.0
    }
}

impl AsRef<str> for WorkloadId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Runtime options for the engine, resolved from CLI flags and
/// environment variables.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Worker threads (>= 1).
    pub threads: usize,
    /// Whether the on-disk result cache is consulted and written.
    pub use_cache: bool,
    /// Cache directory (default `results/cache`).
    pub cache_dir: PathBuf,
    /// Total byte budget for the on-disk cache (`None` = unbounded).
    pub cache_bytes: Option<u64>,
    /// Suppress the end-of-run summary line on stderr.
    pub quiet: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            use_cache: true,
            cache_dir: PathBuf::from("results/cache"),
            cache_bytes: None,
            quiet: false,
        }
    }
}

/// Available parallelism, falling back to 1 when undetectable.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl EngineOptions {
    /// Resolves options from process arguments and environment.
    ///
    /// Flags win over environment variables:
    ///
    /// - `--threads N` / `--threads=N`, else `ISOS_THREADS`, else
    ///   available parallelism;
    /// - `--no-cache`, else `ISOS_NO_CACHE` (any value but `0` or empty);
    /// - `ISOS_CACHE_DIR` overrides the `results/cache` location;
    /// - `--cache-bytes N[k|m|g]`, else `ISOS_CACHE_BYTES`, bounds the
    ///   store (unbounded when unset).
    ///
    /// Unrecognized arguments are ignored so binaries keep their own
    /// flags.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut opts = Self::default();

        if let Ok(v) = std::env::var("ISOS_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                opts.threads = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("ISOS_NO_CACHE") {
            if !v.is_empty() && v != "0" {
                opts.use_cache = false;
            }
        }
        if let Ok(dir) = std::env::var("ISOS_CACHE_DIR") {
            if !dir.is_empty() {
                opts.cache_dir = PathBuf::from(dir);
            }
        }
        if let Ok(v) = std::env::var("ISOS_CACHE_BYTES") {
            if let Some(n) = parse_byte_size(&v) {
                opts.cache_bytes = Some(n);
            }
        }

        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--no-cache" {
                opts.use_cache = false;
            } else if arg == "--threads" {
                if let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                    opts.threads = n.max(1);
                }
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                if let Ok(n) = v.parse::<usize>() {
                    opts.threads = n.max(1);
                }
            } else if arg == "--cache-bytes" {
                if let Some(n) = it.next().and_then(|v| parse_byte_size(v)) {
                    opts.cache_bytes = Some(n);
                }
            } else if let Some(v) = arg.strip_prefix("--cache-bytes=") {
                if let Some(n) = parse_byte_size(v) {
                    opts.cache_bytes = Some(n);
                }
            }
        }
        opts
    }
}

/// Timing and cache accounting for one finished job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRecord {
    /// Accelerator model name.
    pub accel: String,
    /// Workload the job simulated.
    pub workload: WorkloadId,
    /// Wall time of this job in milliseconds (near zero on a cache hit).
    pub millis: f64,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Whether the result came from another in-flight identical job
    /// (single-flight dedup) rather than the cache or a fresh simulation.
    pub deduped: bool,
}

/// Cache hit/miss counters, either for one run ([`EngineStats::cache`])
/// or accumulated over an engine's lifetime
/// ([`SuiteEngine::lifetime_cache`]).
///
/// Search drivers (the `dse` binary) use the lifetime view to assert
/// that repeated evaluations of the same design points are served from
/// the cache instead of re-simulated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Jobs served from the on-disk cache.
    pub hits: usize,
    /// Jobs that had to simulate.
    pub misses: usize,
}

impl CacheStats {
    /// Total jobs accounted for.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of jobs served from the cache (0 when no jobs ran).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Sums two counter sets.
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} hits / {} misses", self.hits, self.misses)
    }
}

/// Aggregated accounting for one engine run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Jobs served from the cache.
    pub hits: usize,
    /// Jobs simulated.
    pub misses: usize,
    /// Jobs served by waiting on an identical in-flight job.
    pub deduped: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time in milliseconds.
    pub wall_millis: f64,
    /// Per-job records, in job order (workload-major, accelerator-minor).
    pub jobs: Vec<JobRecord>,
}

impl EngineStats {
    /// Total job count.
    pub fn jobs_total(&self) -> usize {
        self.hits + self.misses + self.deduped
    }

    /// This run's cache counters as a standalone struct.
    pub fn cache(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// The one-line human summary the harness binaries print.
    pub fn summary(&self) -> String {
        let slowest = self
            .jobs
            .iter()
            .max_by(|a, b| a.millis.total_cmp(&b.millis));
        let tail = match slowest {
            Some(j) => format!(", slowest {}/{} {:.0} ms", j.accel, j.workload, j.millis),
            None => String::new(),
        };
        let deduped = if self.deduped > 0 {
            format!(", {} deduped", self.deduped)
        } else {
            String::new()
        };
        format!(
            "suite engine: {} jobs ({} cache hits, {} misses{deduped}) on {} thread{} in {:.0} ms{}",
            self.jobs_total(),
            self.hits,
            self.misses,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall_millis,
            tail
        )
    }
}

/// Result of a full-suite engine run.
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// One row per workload, in paper figure order.
    pub rows: Vec<SuiteRow>,
    /// Timing and cache accounting.
    pub stats: EngineStats,
}

/// FNV-1a fold, matching [`isosceles::accel::stable_key`]'s primitive.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(state, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Content hash addressing one `(accelerator, workload, seed)` job under
/// the current schema version.
pub fn job_key(accel: &dyn Accelerator, workload: &WorkloadId, seed: u64) -> u64 {
    let h = fnv1a(0xcbf2_9ce4_8422_2325, &SCHEMA_VERSION.to_le_bytes());
    let h = fnv1a(h, &accel.cache_key().to_le_bytes());
    let h = fnv1a(h, workload.as_str().as_bytes());
    fnv1a(h, &seed.to_le_bytes())
}

/// Cumulative job counters shared by an engine and all its clones.
#[derive(Debug, Default)]
struct LifetimeCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    deduped: AtomicUsize,
    computes: AtomicUsize,
}

/// State of one in-flight single-flight slot.
#[derive(Debug)]
enum SlotState {
    /// The leader is simulating.
    Running,
    /// The leader finished; waiters clone this result.
    Done(NetworkMetrics),
    /// The leader panicked; waiters must not hang.
    Poisoned,
}

/// One in-flight job that waiters can subscribe to.
#[derive(Debug)]
struct InflightSlot {
    state: std::sync::Mutex<SlotState>,
    ready: Condvar,
}

impl InflightSlot {
    fn new() -> Self {
        Self {
            state: std::sync::Mutex::new(SlotState::Running),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the leader resolves the slot.
    ///
    /// # Panics
    ///
    /// Panics if the leader panicked; the panic then propagates through
    /// the waiter exactly as the leader's would have.
    fn wait(&self) -> NetworkMetrics {
        let mut state = self.state.lock().expect("inflight slot poisoned");
        loop {
            match &*state {
                SlotState::Running => {
                    state = self.ready.wait(state).expect("inflight slot poisoned");
                }
                SlotState::Done(metrics) => return metrics.clone(),
                SlotState::Poisoned => panic!("single-flight leader panicked"),
            }
        }
    }

    fn resolve(&self, state: SlotState) {
        *self.state.lock().expect("inflight slot poisoned") = state;
        self.ready.notify_all();
    }
}

/// The process-local single-flight table: at most one simulation per
/// [`job_key`] is in flight at a time; every other claimant of the same
/// key subscribes to the leader's slot.
#[derive(Debug, Default)]
struct InflightTable {
    slots: std::sync::Mutex<HashMap<u64, Arc<InflightSlot>>>,
}

/// Outcome of claiming a key in the [`InflightTable`].
enum Claim<'a> {
    /// This caller computes; completing (or unwinding) releases the key.
    Leader(LeaderToken<'a>),
    /// An identical job is already in flight; wait on its slot.
    Waiter(Arc<InflightSlot>),
}

/// RAII leadership of one in-flight key. Dropping the token without
/// [`complete`](Self::complete) (i.e. a panicking leader) poisons the
/// slot so waiters unwind too instead of hanging.
struct LeaderToken<'a> {
    table: &'a InflightTable,
    key: u64,
    slot: Arc<InflightSlot>,
    completed: bool,
}

impl InflightTable {
    fn claim(&self, key: u64) -> Claim<'_> {
        let mut slots = self.slots.lock().expect("inflight table poisoned");
        if let Some(slot) = slots.get(&key) {
            return Claim::Waiter(Arc::clone(slot));
        }
        let slot = Arc::new(InflightSlot::new());
        slots.insert(key, Arc::clone(&slot));
        Claim::Leader(LeaderToken {
            table: self,
            key,
            slot,
            completed: false,
        })
    }

    fn len(&self) -> usize {
        self.slots.lock().expect("inflight table poisoned").len()
    }

    fn release(&self, key: u64) {
        self.slots
            .lock()
            .expect("inflight table poisoned")
            .remove(&key);
    }
}

impl LeaderToken<'_> {
    /// Publishes the result to every waiter and releases the key.
    fn complete(mut self, metrics: NetworkMetrics) {
        self.completed = true;
        self.slot.resolve(SlotState::Done(metrics));
        self.table.release(self.key);
    }
}

impl Drop for LeaderToken<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.slot.resolve(SlotState::Poisoned);
            self.table.release(self.key);
        }
    }
}

/// Engine state shared across clones: counters, the single-flight
/// table, and the lazily opened cache store.
#[derive(Debug, Default)]
struct EngineShared {
    lifetime: LifetimeCounters,
    inflight: InflightTable,
    store: OnceLock<Option<Arc<CacheStore>>>,
}

/// The parallel, cached suite driver. See the [module docs](self).
///
/// Cloning an engine shares its lifetime counters, its single-flight
/// table, and its cache store, so a driver can hand clones to helpers
/// and still read one cumulative [`lifetime_cache`](Self::lifetime_cache)
/// total — and concurrent identical jobs on any clone dedupe against
/// each other.
#[derive(Clone, Debug, Default)]
pub struct SuiteEngine {
    opts: EngineOptions,
    shared: Arc<EngineShared>,
}

impl SuiteEngine {
    /// Creates an engine with explicit options.
    pub fn new(opts: EngineOptions) -> Self {
        Self {
            opts,
            shared: Arc::default(),
        }
    }

    /// Creates an engine configured from CLI flags and environment
    /// variables (see [`EngineOptions::from_env`]).
    pub fn from_env() -> Self {
        Self::new(EngineOptions::from_env())
    }

    /// The resolved options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Cache counters accumulated over every `run_*` call on this engine
    /// and its clones. Deduped jobs count toward neither side.
    pub fn lifetime_cache(&self) -> CacheStats {
        CacheStats {
            hits: self.shared.lifetime.hits.load(Ordering::Relaxed),
            misses: self.shared.lifetime.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of actual simulations performed by this engine and its
    /// clones — the count that single-flight dedup and caching exist to
    /// minimize. `N` identical concurrent requests increment this once.
    pub fn lifetime_computes(&self) -> usize {
        self.shared.lifetime.computes.load(Ordering::Relaxed)
    }

    /// Jobs served by subscribing to an identical in-flight job, over
    /// the engine's lifetime.
    pub fn lifetime_deduped(&self) -> usize {
        self.shared.lifetime.deduped.load(Ordering::Relaxed)
    }

    /// Number of jobs currently being simulated (single-flight slots in
    /// flight).
    pub fn inflight_len(&self) -> usize {
        self.shared.inflight.len()
    }

    /// The engine's persistent cache store, if caching is enabled.
    /// Opened lazily on first use; clones share the instance.
    pub fn cache_store(&self) -> Option<Arc<CacheStore>> {
        self.shared
            .store
            .get_or_init(|| {
                self.opts.use_cache.then(|| {
                    Arc::new(CacheStore::open(
                        self.opts.cache_dir.clone(),
                        self.opts.cache_bytes,
                    ))
                })
            })
            .clone()
    }

    /// Runs the paper's 11-CNN suite on all four accelerator models and
    /// assembles the standard [`SuiteRow`]s.
    pub fn run_suite(&self, seed: u64) -> SuiteRun {
        let workloads = paper_suite(seed);
        let isosceles = IsoscelesConfig::default();
        let single = IsoscelesSingleConfig::default();
        let sparten = SpartenConfig::default();
        let fused = FusedLayerConfig::default();
        let accels: [&dyn Accelerator; 4] = [&isosceles, &single, &sparten, &fused];

        let (mut grid, stats) = self.run_matrix(&workloads, &accels, seed);
        let rows = workloads
            .iter()
            .zip(grid.drain(..))
            .map(|(w, mut per_accel)| {
                // Reverse-order pops take the Vec apart without clones.
                let fused = per_accel.pop().expect("fused metrics");
                let sparten = per_accel.pop().expect("sparten metrics");
                let single = per_accel.pop().expect("single metrics");
                let isosceles = per_accel.pop().expect("isosceles metrics");
                SuiteRow {
                    id: WorkloadId::new(w.id),
                    isosceles,
                    single,
                    sparten,
                    fused,
                }
            })
            .collect();
        SuiteRun { rows, stats }
    }

    /// Runs an arbitrary `workloads` × `accels` job matrix and returns
    /// the metrics grid indexed `[workload][accelerator]` plus run stats.
    ///
    /// Jobs execute on a scoped worker pool; the grid is assembled by job
    /// index, so the output is independent of thread count and
    /// scheduling.
    pub fn run_matrix(
        &self,
        workloads: &[Workload],
        accels: &[&dyn Accelerator],
        seed: u64,
    ) -> (Vec<Vec<NetworkMetrics>>, EngineStats) {
        let started = Instant::now();
        let jobs: Vec<(usize, usize)> = (0..workloads.len())
            .flat_map(|w| (0..accels.len()).map(move |a| (w, a)))
            .collect();

        let slots: Mutex<Vec<Option<(NetworkMetrics, JobRecord)>>> =
            Mutex::new((0..jobs.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let threads = self.opts.threads.clamp(1, jobs.len().max(1));

        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(w, a)) = jobs.get(i) else { break };
                    let done = self.run_job(&workloads[w], accels[a], seed);
                    slots.lock()[i] = Some(done);
                });
            }
        })
        .expect("suite engine worker panicked");

        let mut stats = EngineStats {
            threads,
            ..EngineStats::default()
        };
        let mut grid: Vec<Vec<NetworkMetrics>> = (0..workloads.len())
            .map(|_| Vec::with_capacity(accels.len()))
            .collect();
        for (slot, &(w, _)) in slots.into_inner().into_iter().zip(&jobs) {
            let (metrics, record) = slot.expect("all jobs completed");
            if record.cache_hit {
                stats.hits += 1;
            } else if record.deduped {
                stats.deduped += 1;
            } else {
                stats.misses += 1;
            }
            stats.jobs.push(record);
            grid[w].push(metrics);
        }
        stats.wall_millis = started.elapsed().as_secs_f64() * 1e3;
        if !self.opts.quiet {
            eprintln!("{}", stats.summary());
        }
        (grid, stats)
    }

    /// Runs (or recalls) one job through the full cache + single-flight
    /// pipeline, updating the lifetime counters. This is the unit the
    /// `isos-serve` dispatcher schedules: concurrent identical calls on
    /// this engine (or its clones) cost exactly one simulation.
    pub fn run_one(
        &self,
        workload: &Workload,
        accel: &dyn Accelerator,
        seed: u64,
    ) -> (NetworkMetrics, JobRecord) {
        self.run_job(workload, accel, seed)
    }

    /// Runs (or recalls) a single job.
    fn run_job(
        &self,
        workload: &Workload,
        accel: &dyn Accelerator,
        seed: u64,
    ) -> (NetworkMetrics, JobRecord) {
        let id = WorkloadId::new(workload.id);
        let job_started = Instant::now();
        let key = job_key(accel, &id, seed);
        let meta = EntryMeta {
            accel: accel.name().to_string(),
            accel_key: accel.cache_key(),
            workload: id.clone(),
            seed,
        };
        let record = |cache_hit: bool, deduped: bool, started: Instant| JobRecord {
            accel: accel.name().to_string(),
            workload: id.clone(),
            millis: started.elapsed().as_secs_f64() * 1e3,
            cache_hit,
            deduped,
        };
        let lifetime = &self.shared.lifetime;

        let store = self.cache_store();
        if let Some(store) = &store {
            if let Some(metrics) = store.load(key, &meta) {
                lifetime.hits.fetch_add(1, Ordering::Relaxed);
                return (metrics, record(true, false, job_started));
            }
        }

        match self.shared.inflight.claim(key) {
            Claim::Waiter(slot) => {
                let metrics = slot.wait();
                lifetime.deduped.fetch_add(1, Ordering::Relaxed);
                (metrics, record(false, true, job_started))
            }
            Claim::Leader(token) => {
                // Double-check the cache under leadership: a previous
                // leader may have stored the entry between our miss and
                // our claim, and a hit here keeps "identical concurrent
                // requests cost exactly one simulation" airtight.
                if let Some(store) = &store {
                    if let Some(metrics) = store.load(key, &meta) {
                        token.complete(metrics.clone());
                        lifetime.hits.fetch_add(1, Ordering::Relaxed);
                        return (metrics, record(true, false, job_started));
                    }
                }
                let metrics = accel.simulate(&workload.network, seed);
                lifetime.computes.fetch_add(1, Ordering::Relaxed);
                if let Some(store) = &store {
                    store.store(key, &meta, &metrics);
                }
                token.complete(metrics.clone());
                lifetime.misses.fetch_add(1, Ordering::Relaxed);
                (metrics, record(false, false, job_started))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SEED;
    use isos_nn::models::suite_workload;
    use std::sync::atomic::AtomicU32;

    /// Unique per-test cache dir under the system temp dir.
    fn scratch_dir(tag: &str) -> PathBuf {
        static NONCE: AtomicU32 = AtomicU32::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("isos-engine-{}-{}-{}", std::process::id(), tag, n));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn quiet_engine(cache_dir: PathBuf, threads: usize, use_cache: bool) -> SuiteEngine {
        SuiteEngine::new(EngineOptions {
            threads,
            use_cache,
            cache_dir,
            quiet: true,
            ..EngineOptions::default()
        })
    }

    /// Small matrix (1 workload × 2 models) that keeps tests fast.
    fn small_inputs() -> (Vec<Workload>, SpartenConfig, FusedLayerConfig) {
        (
            vec![suite_workload("G58", SEED)],
            SpartenConfig::default(),
            FusedLayerConfig::default(),
        )
    }

    #[test]
    fn second_run_hits_cache_with_identical_metrics() {
        let dir = scratch_dir("hit");
        let (workloads, sparten, fused) = small_inputs();
        let accels: [&dyn Accelerator; 2] = [&sparten, &fused];

        let eng = quiet_engine(dir.clone(), 1, true);
        let (cold, s1) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s1.hits, s1.misses), (0, 2));

        let (warm, s2) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s2.hits, s2.misses), (2, 0));
        assert_eq!(warm, cold);
    }

    #[test]
    fn cache_hit_short_circuits_simulation() {
        // Plant a doctored entry: if the engine *returns* it, the job was
        // served from disk rather than re-simulated.
        let dir = scratch_dir("shortcircuit");
        let (workloads, sparten, _) = small_inputs();
        let accels: [&dyn Accelerator; 1] = [&sparten];
        let eng = quiet_engine(dir.clone(), 1, true);

        let (real, _) = eng.run_matrix(&workloads, &accels, SEED);
        let store = eng.cache_store().unwrap();
        let key = job_key(&sparten, &WorkloadId::new("G58"), SEED);
        let mut doctored = real[0][0].clone();
        doctored.total.cycles += 12345;
        store.store(
            key,
            &EntryMeta {
                accel: sparten.name().to_string(),
                accel_key: sparten.cache_key(),
                workload: WorkloadId::new("G58"),
                seed: SEED,
            },
            &doctored,
        );

        let (again, stats) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(again[0][0].total.cycles, real[0][0].total.cycles + 12345);
    }

    #[test]
    fn config_seed_and_schema_changes_invalidate() {
        let dir = scratch_dir("invalidate");
        let (workloads, sparten, _) = small_inputs();
        let accels: [&dyn Accelerator; 1] = [&sparten];
        let eng = quiet_engine(dir.clone(), 1, true);
        let (_, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!(s.misses, 1);

        // Different seed: different key, so a miss.
        let (_, s) = eng.run_matrix(&workloads, &accels, SEED + 1);
        assert_eq!((s.hits, s.misses), (0, 1));

        // Different config: different key, so a miss.
        let tweaked = SpartenConfig {
            compute_efficiency: 0.5,
            ..Default::default()
        };
        let accels2: [&dyn Accelerator; 1] = [&tweaked];
        let (_, s) = eng.run_matrix(&workloads, &accels2, SEED);
        assert_eq!((s.hits, s.misses), (0, 1));

        // Stale schema version in an otherwise-matching file: the key
        // matches (same path) but validation rejects it.
        let path =
            eng.cache_store()
                .unwrap()
                .entry_path(job_key(&sparten, &WorkloadId::new("G58"), SEED));
        let text = std::fs::read_to_string(&path).unwrap();
        let stale = text.replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(stale, text, "schema field not found in cache entry");
        std::fs::write(&path, stale).unwrap();
        let (_, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s.hits, s.misses), (0, 1));
    }

    #[test]
    fn old_schema_entry_is_quarantined_and_recomputed_once() {
        // Satellite: entries written under a previous SCHEMA_VERSION
        // (e.g. v2 rows without the kind/payload envelope) must be
        // quarantined on first touch and recomputed exactly once, after
        // which the slot is healthy again.
        let dir = scratch_dir("oldschema");
        let (workloads, sparten, _) = small_inputs();
        let accels: [&dyn Accelerator; 1] = [&sparten];
        let eng = quiet_engine(dir.clone(), 1, true);
        let (clean, _) = eng.run_matrix(&workloads, &accels, SEED);

        let path =
            eng.cache_store()
                .unwrap()
                .entry_path(job_key(&sparten, &WorkloadId::new("G58"), SEED));
        let text = std::fs::read_to_string(&path).unwrap();
        let old = text.replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION - 1),
            1,
        );
        assert_ne!(old, text, "schema field not found in cache entry");
        std::fs::write(&path, old).unwrap();

        let computes_before = eng.lifetime_computes();
        let (recomputed, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(recomputed, clean, "recompute reproduces the metrics");
        assert_eq!(eng.lifetime_computes(), computes_before + 1);
        assert!(
            path.with_extension("json.bad").exists(),
            "old-schema entry preserved as *.bad"
        );
        assert_eq!(eng.cache_store().unwrap().counters().quarantined, 1);

        // Recomputed once: the next run is a plain hit, no re-quarantine
        // and no further simulation.
        let (_, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s.hits, s.misses), (1, 0));
        assert_eq!(eng.lifetime_computes(), computes_before + 1);
        assert_eq!(eng.cache_store().unwrap().counters().quarantined, 1);
    }

    #[test]
    fn corrupt_cache_file_falls_back_to_recompute() {
        let dir = scratch_dir("corrupt");
        let (workloads, sparten, _) = small_inputs();
        let accels: [&dyn Accelerator; 1] = [&sparten];
        let eng = quiet_engine(dir.clone(), 1, true);
        let (clean, _) = eng.run_matrix(&workloads, &accels, SEED);

        let path =
            eng.cache_store()
                .unwrap()
                .entry_path(job_key(&sparten, &WorkloadId::new("G58"), SEED));
        std::fs::write(&path, "{ not json !!").unwrap();

        let (recomputed, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(recomputed, clean);
        // The corrupt file was quarantined, not silently clobbered, and
        // the slot healed with a valid entry.
        assert!(path.with_extension("json.bad").exists());
        let (_, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s.hits, s.misses), (1, 0));
        assert_eq!(eng.cache_store().unwrap().counters().quarantined, 1);
    }

    #[test]
    fn racing_identical_cold_jobs_simulate_exactly_once() {
        // Satellite: two engine clones race the same cold job through
        // run_one; single-flight must guarantee one compute, and both
        // callers must observe bit-identical metrics.
        let dir = scratch_dir("singleflight");
        let (workloads, sparten, _) = small_inputs();
        let eng = quiet_engine(dir, 2, true);

        let barrier = std::sync::Barrier::new(2);
        let results: Vec<(NetworkMetrics, JobRecord)> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let eng = eng.clone();
                    let barrier = &barrier;
                    let w = &workloads[0];
                    let sparten = &sparten;
                    s.spawn(move |_| {
                        barrier.wait();
                        eng.run_one(w, sparten, SEED)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();

        assert_eq!(eng.lifetime_computes(), 1, "exactly one simulation ran");
        assert_eq!(results[0].0, results[1].0, "both callers see one result");
        let total = eng.lifetime_cache().total() + eng.lifetime_deduped();
        assert_eq!(total, 2, "every job accounted for");
        assert_eq!(eng.inflight_len(), 0, "no slot leaked");

        // A later identical request is a plain cache hit.
        let (_, rec) = eng.run_one(&workloads[0], &sparten, SEED);
        assert!(rec.cache_hit && !rec.deduped);
    }

    #[test]
    fn run_matrix_dedupes_duplicate_jobs() {
        // The CLI path: a matrix listing the same (workload, accel) twice
        // must not simulate twice even when both jobs run cold.
        let dir = scratch_dir("matrixdedup");
        let (mut workloads, sparten, _) = small_inputs();
        workloads.push(workloads[0].clone());
        let accels: [&dyn Accelerator; 1] = [&sparten];

        let eng = quiet_engine(dir, 2, true);
        let (grid, stats) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!(eng.lifetime_computes(), 1, "duplicate job deduped");
        assert_eq!(stats.jobs_total(), 2);
        assert_eq!(grid[0], grid[1], "duplicates got identical metrics");
    }

    #[test]
    fn no_cache_mode_writes_nothing() {
        let dir = scratch_dir("nocache");
        let (workloads, sparten, _) = small_inputs();
        let accels: [&dyn Accelerator; 1] = [&sparten];
        let eng = quiet_engine(dir.clone(), 2, false);
        let (_, s) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!((s.hits, s.misses), (0, 1));
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 0);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let dir = scratch_dir("determinism");
        let (workloads, sparten, fused) = small_inputs();
        let single = IsoscelesSingleConfig::default();
        let accels: [&dyn Accelerator; 3] = [&single, &sparten, &fused];

        // Caches off so both runs actually simulate.
        let serial = quiet_engine(dir.clone(), 1, false);
        let parallel = quiet_engine(dir, 4, false);
        let (a, s1) = serial.run_matrix(&workloads, &accels, SEED);
        let (b, s2) = parallel.run_matrix(&workloads, &accels, SEED);
        assert_eq!(s1.threads, 1);
        assert_eq!(s2.threads, 3); // 4 requested, clamped to the job count
        assert_eq!(
            serde::json::to_string(&a),
            serde::json::to_string(&b),
            "parallel run diverged from serial"
        );
    }

    #[test]
    fn job_keys_are_unique_across_the_standard_matrix() {
        let isosceles = IsoscelesConfig::default();
        let single = IsoscelesSingleConfig::default();
        let sparten = SpartenConfig::default();
        let fused = FusedLayerConfig::default();
        let accels: [&dyn Accelerator; 4] = [&isosceles, &single, &sparten, &fused];
        let ids = [
            "R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89",
        ];
        let mut keys: Vec<u64> = Vec::new();
        for a in accels {
            for id in ids {
                keys.push(job_key(a, &WorkloadId::new(id), SEED));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 44, "cache key collision in standard matrix");
    }

    #[test]
    fn run_suite_rows_follow_paper_figure_order() {
        let dir = scratch_dir("suiteorder");
        let eng = quiet_engine(dir, 8, true);
        let run = eng.run_suite(SEED);
        let ids: Vec<&str> = run.rows.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            ["R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89"],
            "suite rows must match the paper's figure order"
        );
        // Every row carries the full per-layer breakdown for all models.
        for r in &run.rows {
            for (accel, m) in r.models() {
                assert!(!m.layers.is_empty(), "{}/{accel}: no layers", r.id);
            }
        }
    }

    #[test]
    fn lifetime_cache_accumulates_across_runs_and_clones() {
        let dir = scratch_dir("lifetime");
        let (workloads, sparten, fused) = small_inputs();
        let accels: [&dyn Accelerator; 2] = [&sparten, &fused];

        let eng = quiet_engine(dir, 1, true);
        assert_eq!(eng.lifetime_cache(), CacheStats::default());

        let (_, s1) = eng.run_matrix(&workloads, &accels, SEED);
        assert_eq!(s1.cache(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(eng.lifetime_cache(), s1.cache());

        // A clone shares the counters, and its runs hit the same cache.
        let clone = eng.clone();
        let (_, s2) = clone.run_matrix(&workloads, &accels, SEED);
        assert_eq!(s2.cache(), CacheStats { hits: 2, misses: 0 });
        let total = eng.lifetime_cache();
        assert_eq!(total, CacheStats { hits: 2, misses: 2 });
        assert_eq!(total, clone.lifetime_cache());
        assert_eq!(total.total(), 4);
        assert!((total.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_stats_merge_and_rates() {
        let a = CacheStats { hits: 3, misses: 1 };
        let b = CacheStats { hits: 1, misses: 3 };
        assert_eq!(a.merge(b), CacheStats { hits: 4, misses: 4 });
        assert_eq!(a.merge(b), b.merge(a));
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(a.to_string(), "3 hits / 1 misses");
    }

    #[test]
    fn options_default_to_available_parallelism_and_cache_on() {
        let opts = EngineOptions::default();
        assert!(opts.threads >= 1);
        assert!(opts.use_cache);
        assert_eq!(opts.cache_dir, PathBuf::from("results/cache"));
    }

    #[test]
    fn summary_line_reports_counts() {
        let stats = EngineStats {
            hits: 40,
            misses: 4,
            deduped: 0,
            threads: 8,
            wall_millis: 1234.5,
            jobs: vec![JobRecord {
                accel: "isosceles".into(),
                workload: WorkloadId::new("R99"),
                millis: 600.0,
                cache_hit: false,
                deduped: false,
            }],
        };
        let line = stats.summary();
        assert!(line.contains("44 jobs"));
        assert!(line.contains("40 cache hits"));
        assert!(line.contains("4 misses"));
        assert!(!line.contains("deduped"), "deduped omitted when zero");
        assert!(line.contains("8 threads"));
        assert!(line.contains("isosceles/R99"));
        assert!(!line.contains('\n'));

        let with_dedup = EngineStats {
            deduped: 3,
            ..stats
        };
        assert!(with_dedup.summary().contains("3 deduped"));
        assert_eq!(with_dedup.jobs_total(), 47);
    }
}
