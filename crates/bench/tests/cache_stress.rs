//! Concurrency stress tests for the sharded, LRU-bounded cache store:
//! many threads hammering mixed hit/miss/evict/quarantine traffic on a
//! tiny byte budget must never leave a manifest referencing a missing
//! file, and must never let the on-disk footprint exceed the bound.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Barrier;

use isos_sim::metrics::{NetworkMetrics, RunMetrics};
use isosceles_bench::cache::{CacheStore, EntryMeta};
use isosceles_bench::engine::WorkloadId;

fn scratch_root(tag: &str) -> PathBuf {
    static NONCE: AtomicU32 = AtomicU32::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("isos-cachestress-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn meta(i: u64) -> EntryMeta {
    EntryMeta {
        accel: "stress".into(),
        accel_key: 0xdead,
        workload: WorkloadId::new(format!("W{i}")),
        seed: i,
    }
}

fn metrics(i: u64) -> NetworkMetrics {
    NetworkMetrics {
        total: RunMetrics {
            cycles: i + 1,
            weight_traffic: i as f64,
            ..RunMetrics::default()
        },
        ..NetworkMetrics::default()
    }
}

/// Key `i` spread across all 16 shards.
fn key(i: u64) -> u64 {
    (i % 16) << 60 | i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 8
}

#[test]
fn concurrent_writers_hold_byte_bound_and_manifest_integrity() {
    const THREADS: u64 = 8;
    const OPS: u64 = 120;
    const KEYS: u64 = 96;
    // Entries are ~345 bytes; a 16 KiB budget (1 KiB per shard, ~2 entries)
    // against 6 live keys per shard forces constant evictions.
    const BOUND: u64 = 16 * 1024;

    let store = CacheStore::open(scratch_root("mixed"), Some(BOUND));
    let barrier = Barrier::new(THREADS as usize);

    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let store = &store;
            let barrier = &barrier;
            s.spawn(move |_| {
                barrier.wait();
                for op in 0..OPS {
                    // Deterministic per-thread walk over a key set small
                    // enough to collide constantly. Every op loads; every
                    // third op writes the same key first, so hit, miss,
                    // overwrite, and evict paths all stay hot. (Careful:
                    // the index is affine in (t, op), so deciding *writes*
                    // by an affine test like `(t + op) % 3` would pin all
                    // written keys to one residue class mod 3 and starve
                    // eviction entirely.)
                    let i = (t * 31 + op * 7) % KEYS;
                    if op % 3 == 0 {
                        store.store(key(i), &meta(i), &metrics(i));
                    }
                    if let Some(m) = store.load(key(i), &meta(i)) {
                        // A hit must always carry the value the key was
                        // stored under — never a torn or foreign entry.
                        assert_eq!(m, metrics(i), "key {i} returned wrong metrics");
                    }
                    // Periodically verify invariants *during* the storm,
                    // not just after it.
                    if op % 40 == 39 {
                        store.verify().expect("mid-storm invariants");
                    }
                }
            });
        }
    })
    .expect("stress worker panicked");

    let usage = store.verify().expect("post-storm invariants");
    assert!(
        usage.bytes <= BOUND,
        "{} bytes on disk exceeds the {BOUND}-byte bound",
        usage.bytes
    );
    let c = store.counters();
    assert!(
        c.writes > 0 && c.hits > 0 && c.evicted_entries > 0,
        "storm exercised every path: {c}"
    );
    // No stray temp files survived the atomic-rename protocol.
    for shard in 0..16 {
        let dir = store.root().join(format!("{shard:x}"));
        let Ok(files) = std::fs::read_dir(&dir) else {
            continue;
        };
        for f in files.flatten() {
            let name = f.file_name().to_string_lossy().into_owned();
            assert!(
                !name.contains(".tmp."),
                "leftover temp file {name} in shard {shard:x}"
            );
        }
    }
}

#[test]
fn concurrent_quarantine_and_recompute_self_heals() {
    // Poison a subset of entries, then race readers and writers over
    // them: every poisoned slot must be quarantined exactly once and
    // healed by the next store, with the manifests staying consistent.
    let store = CacheStore::open(scratch_root("poison"), None);
    const KEYS: u64 = 24;
    for i in 0..KEYS {
        store.store(key(i), &meta(i), &metrics(i));
    }
    for i in (0..KEYS).step_by(3) {
        std::fs::write(store.entry_path(key(i)), "{ poisoned").unwrap();
    }

    crossbeam::thread::scope(|s| {
        for t in 0..6u64 {
            let store = &store;
            s.spawn(move |_| {
                for round in 0..3u64 {
                    for i in 0..KEYS {
                        if store.load(key(i), &meta(i)).is_none() {
                            store.store(key(i), &meta(i), &metrics(i));
                        }
                    }
                    let _ = (t, round);
                }
            });
        }
    })
    .expect("poison worker panicked");

    // Every slot healed: all keys hit, nothing left to quarantine.
    for i in 0..KEYS {
        assert_eq!(store.load(key(i), &meta(i)), Some(metrics(i)), "key {i}");
    }
    let c = store.counters();
    assert_eq!(
        c.quarantined,
        KEYS / 3,
        "each poisoned entry quarantined once"
    );
    store.verify().expect("healed store is consistent");
}
