//! The parallel schedule executor must be *bit-identical* to the serial
//! one: `--threads N` partitions work, it never reorders or restructures
//! arithmetic. This test pins that contract for every suite workload at
//! thread counts {1, 2, 8}, comparing full [`NetworkMetrics`] (totals,
//! per-group and per-layer breakdowns) both structurally and through
//! their serialized JSON (which spells every `f64` exactly), plus the
//! stream scheduler's [`StreamMetrics`] on top.
//!
//! `set_run_threads` is process-wide state, so everything runs inside a
//! single sequential `#[test]`.
//!
//! [`NetworkMetrics`]: isosceles::metrics::NetworkMetrics
//! [`StreamMetrics`]: isos_stream::sched::StreamMetrics

use isos_nn::models::paper_suite;
use isos_sim::threads::set_run_threads;
use isos_stream::config::StreamConfig;
use isos_stream::sched::run_stream;
use isosceles_bench::trace::accel_by_name;

const SEED: u64 = 20230225;
const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn simulation_is_bit_identical_at_every_thread_count() {
    let accel = accel_by_name("isosceles").expect("isosceles model");
    let stream_cfg = StreamConfig {
        requests: 6,
        ..StreamConfig::default()
    };

    for w in paper_suite(SEED) {
        set_run_threads(1);
        let baseline = accel.simulate(&w.network, SEED);
        let baseline_json = serde::json::to_string(&baseline);
        let stream_baseline = run_stream(accel.as_ref(), w.id, SEED, &stream_cfg);

        for n in THREADS {
            set_run_threads(n);
            let got = accel.simulate(&w.network, SEED);
            assert_eq!(
                got, baseline,
                "{}: NetworkMetrics diverge at --threads {n}",
                w.id
            );
            assert_eq!(
                serde::json::to_string(&got),
                baseline_json,
                "{}: serialized metrics diverge at --threads {n}",
                w.id
            );
            // The breakdowns must be present and aligned, not just equal
            // as a whole (an empty-vs-empty accident would also pass
            // `==`).
            assert!(!got.layers.is_empty(), "{}: no per-layer metrics", w.id);
            assert_eq!(
                got.layers.iter().map(|(id, _)| id).collect::<Vec<_>>(),
                baseline.layers.iter().map(|(id, _)| id).collect::<Vec<_>>(),
                "{}: layer order diverges at --threads {n}",
                w.id
            );

            let stream = run_stream(accel.as_ref(), w.id, SEED, &stream_cfg);
            assert_eq!(
                stream, stream_baseline,
                "{}: StreamMetrics diverge at --threads {n}",
                w.id
            );
        }
    }
    set_run_threads(0);
}
