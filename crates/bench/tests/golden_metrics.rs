//! Golden lock on the cycle-level models across the harness refactor.
//!
//! The shared `isos_sim::harness` interval loop must be bit-identical to
//! the per-accelerator loops it replaced: these values were captured from
//! the pre-refactor simulators at the paper seed and are asserted with
//! exact `f64` equality (no tolerance). If a change is *meant* to alter
//! model behavior, regenerate the table by printing the same fields and
//! update it in the same commit.

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_sim::energy::{energy_of, EnergyParams};
use isos_sim::metrics::NetworkMetrics;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

const SEED: u64 = 20230225;

/// (workload, accelerator, cycles, weight_traffic, act_traffic,
/// effectual_macs, energy_mj) captured pre-refactor at `SEED`.
#[allow(clippy::excessive_precision)]
const GOLDEN: &[(&str, &str, u64, f64, f64, f64, f64)] = &[
    (
        "R96",
        "isosceles",
        90800,
        2543611.4958505575,
        6620344.063842038,
        160370440.13869464,
        0.5505266396912553,
    ),
    (
        "R96",
        "isosceles-single",
        218800,
        2543611.4958505584,
        24018615.6920884,
        160370440.13869455,
        1.0933527144925415,
    ),
    (
        "R96",
        "sparten",
        483095,
        4206840.702913225,
        56341521.521809466,
        156177419.32835475,
        2.1468016433031334,
    ),
    (
        "R96",
        "fused-layer",
        1383101,
        25502912.0,
        5001920.0,
        5284926944.0,
        9.671880216000002,
    ),
    (
        "V68",
        "isosceles",
        972000,
        26327542.719999995,
        15088715.354794383,
        2723996201.267616,
        5.786780984025152,
    ),
    (
        "V68",
        "isosceles-single",
        987700,
        26327542.719999995,
        22374673.299089443,
        2723996201.267616,
        6.014102871887158,
    ),
    (
        "V68",
        "sparten",
        2122523,
        29912918.975999996,
        32491903.495524395,
        2723996201.2676153,
        6.441624193203128,
    ),
    (
        "V68",
        "fused-layer",
        5130893,
        138344128.0,
        18453242.0,
        16084757248.0,
        31.4319274032,
    ),
    (
        "G58",
        "isosceles",
        13700,
        89013.76000000004,
        854347.9695373297,
        28882868.3263913,
        0.07708961870011034,
    ),
    (
        "G58",
        "isosceles-single",
        14000,
        89013.76000000001,
        965524.0225951567,
        28882868.3263913,
        0.08055831155551453,
    ),
    (
        "G58",
        "sparten",
        22717,
        89013.76000000001,
        1116101.1617041375,
        28882868.326391306,
        0.08525631829571474,
    ),
    (
        "G58",
        "fused-layer",
        44216,
        163328.0,
        733432.0,
        161598080.0,
        0.294615744,
    ),
    (
        "M75",
        "isosceles",
        42900,
        1569201.224934544,
        864227.8703793194,
        105198452.84211397,
        0.24950043496328062,
    ),
    (
        "M75",
        "isosceles-single",
        78300,
        1569201.2249345442,
        6747590.794162943,
        105198452.84211399,
        0.4330613581853297,
    ),
    (
        "M75",
        "sparten",
        137432,
        1569201.2249345442,
        14677714.12073071,
        105181167.40220065,
        0.6804526849983871,
    ),
    (
        "M75",
        "fused-layer",
        285727,
        4209088.0,
        732952.0,
        1080143454.0,
        1.9364283471000001,
    ),
];

fn simulate(accel: &str, net: &isos_nn::graph::Network) -> NetworkMetrics {
    match accel {
        "isosceles" => IsoscelesConfig::default().simulate(net, SEED),
        "isosceles-single" => IsoscelesSingleConfig::default().simulate(net, SEED),
        "sparten" => SpartenConfig::default().simulate(net, SEED),
        "fused-layer" => FusedLayerConfig::default().simulate(net, SEED),
        other => panic!("unknown accelerator {other}"),
    }
}

#[test]
fn batch1_single_request_stream_reproduces_the_golden_metrics() {
    // The degenerate streaming scenario (one request, batch = 1, burst
    // arrival) must be the identity wrapper around the single-inference
    // path: same cycles, traffic, MACs, and energy, to the bit.
    let params = EnergyParams::default();
    let cfg = isos_stream::StreamConfig {
        requests: 1,
        batch: 1,
        ..isos_stream::StreamConfig::default()
    };
    let mut checked = 0;
    for &(id, accel, cycles, weight, act, macs, energy_mj) in GOLDEN {
        let accel_model = isosceles_bench::trace::accel_by_name(accel).expect(accel);
        let s = isos_stream::run_stream(accel_model.as_ref(), id, SEED, &cfg);
        let e = energy_of(&s.total.activity, &params).total_mj();
        assert_eq!(s.total.cycles, cycles, "{id}/{accel}: stream cycles");
        assert_eq!(
            s.total.weight_traffic, weight,
            "{id}/{accel}: stream weight traffic"
        );
        assert_eq!(s.total.act_traffic, act, "{id}/{accel}: stream act traffic");
        assert_eq!(
            s.total.effectual_macs, macs,
            "{id}/{accel}: stream effectual macs"
        );
        assert_eq!(e, energy_mj, "{id}/{accel}: stream energy");
        assert_eq!(s.p99(), cycles, "{id}/{accel}: sole latency is the run");
        checked += 1;
    }
    assert_eq!(checked, 16, "4 workloads x 4 accelerators");
}

#[test]
fn harness_refactor_is_bit_identical_to_pre_refactor_models() {
    let params = EnergyParams::default();
    let mut checked = 0;
    for &(id, accel, cycles, weight, act, macs, energy_mj) in GOLDEN {
        let net = isos_nn::models::suite_workload(id, SEED).network;
        let m = simulate(accel, &net);
        let e = energy_of(&m.total.activity, &params).total_mj();
        assert_eq!(m.total.cycles, cycles, "{id}/{accel}: cycles");
        assert_eq!(
            m.total.weight_traffic, weight,
            "{id}/{accel}: weight traffic"
        );
        assert_eq!(m.total.act_traffic, act, "{id}/{accel}: act traffic");
        assert_eq!(m.total.effectual_macs, macs, "{id}/{accel}: effectual macs");
        assert_eq!(e, energy_mj, "{id}/{accel}: energy");
        checked += 1;
    }
    assert_eq!(checked, 16, "4 workloads x 4 accelerators");
}
