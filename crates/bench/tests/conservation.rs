//! Cross-accelerator conservation: every model's per-layer breakdown must
//! sum back to its network totals.
//!
//! This is the structural invariant behind the per-layer tables in
//! `bench::report` — if a simulator attributes traffic or cycles to the
//! wrong layer (or drops a layer), the shares it exports are meaningless
//! even when the network totals look right.

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_sim::metrics::{NetworkMetrics, RunMetrics};
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

const SEED: u64 = 20230225;

fn assert_close(a: f64, b: f64, what: &str, ctx: &str) {
    let rel = (a - b).abs() / b.abs().max(1.0);
    assert!(
        rel < 1e-6,
        "{ctx}: {what} sum {a} vs total {b} (rel {rel:.2e})"
    );
}

fn check(ctx: &str, m: &NetworkMetrics) {
    assert!(!m.layers.is_empty(), "{ctx}: no per-layer breakdown");
    for (sum, label) in [(m.layer_sum(), "layer"), (m.group_sum(), "group")] {
        let ctx = format!("{ctx} ({label} sum)");
        assert_eq!(sum.cycles, m.total.cycles, "{ctx}: cycles");
        check_run(&ctx, &sum, &m.total);
    }
}

fn check_run(ctx: &str, sum: &RunMetrics, total: &RunMetrics) {
    assert_close(
        sum.weight_traffic,
        total.weight_traffic,
        "weight_traffic",
        ctx,
    );
    assert_close(sum.act_traffic, total.act_traffic, "act_traffic", ctx);
    assert_close(
        sum.effectual_macs,
        total.effectual_macs,
        "effectual_macs",
        ctx,
    );
    assert_close(
        sum.activity.dram_bytes,
        total.activity.dram_bytes,
        "dram_bytes",
        ctx,
    );
    assert_close(
        sum.activity.shared_sram_bytes,
        total.activity.shared_sram_bytes,
        "shared_sram_bytes",
        ctx,
    );
    assert_close(
        sum.activity.local_sram_bytes,
        total.activity.local_sram_bytes,
        "local_sram_bytes",
        ctx,
    );
    assert_close(sum.activity.macs, total.activity.macs, "activity.macs", ctx);
    assert_close(
        sum.mac_util.busy(),
        total.mac_util.busy(),
        "mac_util.busy",
        ctx,
    );
    assert_close(
        sum.bw_util.busy(),
        total.bw_util.busy(),
        "bw_util.busy",
        ctx,
    );
}

#[test]
fn per_layer_sums_match_network_totals_for_every_model() {
    let isos = IsoscelesConfig::default();
    let single = IsoscelesSingleConfig::default();
    let sparten = SpartenConfig::default();
    let fused = FusedLayerConfig::default();
    for w in isos_nn::models::paper_suite(SEED) {
        check(
            &format!("{}/isosceles", w.id),
            &isos.simulate(&w.network, SEED),
        );
        check(
            &format!("{}/isosceles-single", w.id),
            &single.simulate(&w.network, SEED),
        );
        check(
            &format!("{}/sparten", w.id),
            &sparten.simulate(&w.network, SEED),
        );
        check(
            &format!("{}/fused-layer", w.id),
            &fused.simulate(&w.network, SEED),
        );
    }
}
