//! Stream scenario configuration: request count, batch size, arrival
//! process, and batching policy.

use serde::{Deserialize, Serialize};

/// How requests arrive at the accelerator's queue.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// All requests are queued at cycle 0 (offline / saturation mode;
    /// what the paper's single-inference figures correspond to).
    Burst,
    /// One request every `period` cycles (deterministic open loop).
    Periodic {
        /// Inter-arrival gap in cycles.
        period: u64,
    },
    /// Poisson process: exponentially distributed inter-arrival gaps
    /// with the given mean, drawn from the stream seed by inverse
    /// transform.
    Poisson {
        /// Mean inter-arrival gap in cycles.
        mean: f64,
    },
}

impl Arrival {
    /// Parses the CLI/protocol spelling: `burst`, `periodic:N`, or
    /// `poisson:F`.
    pub fn parse(s: &str) -> Result<Arrival, String> {
        if s == "burst" {
            return Ok(Arrival::Burst);
        }
        if let Some(v) = s.strip_prefix("periodic:") {
            let period: u64 = v
                .parse()
                .map_err(|_| format!("bad periodic gap {v:?} (want cycles)"))?;
            if period == 0 {
                return Err("periodic gap must be >= 1 cycle".to_string());
            }
            return Ok(Arrival::Periodic { period });
        }
        if let Some(v) = s.strip_prefix("poisson:") {
            let mean: f64 = v
                .parse()
                .map_err(|_| format!("bad poisson mean {v:?} (want cycles)"))?;
            if !mean.is_finite() || mean <= 0.0 {
                return Err("poisson mean must be a positive cycle count".to_string());
            }
            return Ok(Arrival::Poisson { mean });
        }
        Err(format!(
            "unknown arrival process {s:?}: want burst, periodic:N, or poisson:F"
        ))
    }

    /// The CLI/protocol spelling accepted by [`Arrival::parse`].
    pub fn spell(&self) -> String {
        match *self {
            Arrival::Burst => "burst".to_string(),
            Arrival::Periodic { period } => format!("periodic:{period}"),
            Arrival::Poisson { mean } => format!("poisson:{mean}"),
        }
    }
}

/// When the server starts a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Dispatch as soon as the server is free and at least one request
    /// is queued, with however many requests (up to `batch`) are queued
    /// at that instant. Minimizes latency; batches may run underfull.
    Greedy,
    /// Wait until `batch` requests are queued (or the stream is
    /// exhausted) before dispatching. Maximizes weight-traffic
    /// amortization; the wait is accounted as batch-formation time.
    WaitFull,
}

impl BatchPolicy {
    /// Parses the CLI/protocol spelling: `greedy` or `waitfull`.
    pub fn parse(s: &str) -> Result<BatchPolicy, String> {
        match s {
            "greedy" => Ok(BatchPolicy::Greedy),
            "waitfull" => Ok(BatchPolicy::WaitFull),
            _ => Err(format!(
                "unknown batch policy {s:?}: want greedy or waitfull"
            )),
        }
    }

    /// The CLI/protocol spelling accepted by [`BatchPolicy::parse`].
    pub fn spell(&self) -> &'static str {
        match self {
            BatchPolicy::Greedy => "greedy",
            BatchPolicy::WaitFull => "waitfull",
        }
    }
}

/// One streaming scenario: how many requests, how they arrive, and how
/// they are batched.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of requests in the stream.
    pub requests: u64,
    /// Maximum batch size (`1` = unbatched).
    pub batch: u64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Modeled clock in GHz, for img/s conversion only (cycles are the
    /// primary unit; Table I models 1 GHz).
    pub clock_ghz: f64,
    /// DRAM bandwidth in bytes per cycle, used to convert a follower's
    /// amortized weight traffic into saved cycles (128 B/cyc = the
    /// paper's 128 GB/s HBM at 1 GHz).
    pub dram_bytes_per_cycle: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            requests: 256,
            batch: 1,
            arrival: Arrival::Burst,
            policy: BatchPolicy::Greedy,
            clock_ghz: 1.0,
            dram_bytes_per_cycle: 128.0,
        }
    }
}

impl StreamConfig {
    /// Checks the configuration for nonsensical values; the scheduler
    /// assumes a validated configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("stream needs at least one request".to_string());
        }
        if self.batch == 0 {
            return Err("batch size must be >= 1".to_string());
        }
        if !self.clock_ghz.is_finite() || self.clock_ghz <= 0.0 {
            return Err("clock_ghz must be positive".to_string());
        }
        if !self.dram_bytes_per_cycle.is_finite() || self.dram_bytes_per_cycle <= 0.0 {
            return Err("dram_bytes_per_cycle must be positive".to_string());
        }
        match self.arrival {
            Arrival::Periodic { period: 0 } => Err("periodic gap must be >= 1 cycle".to_string()),
            Arrival::Poisson { mean } if !mean.is_finite() || mean <= 0.0 => {
                Err("poisson mean must be a positive cycle count".to_string())
            }
            _ => Ok(()),
        }
    }

    /// Stable content hash of this scenario, mixed into cache keys so a
    /// cached streaming row can never be confused with a different
    /// scenario (or with a plain single-inference row).
    pub fn cache_key(&self) -> u64 {
        isosceles::accel::stable_key("stream", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_parse_round_trips() {
        for s in ["burst", "periodic:5000", "poisson:2500"] {
            let a = Arrival::parse(s).expect(s);
            assert_eq!(a.spell(), s);
            assert_eq!(Arrival::parse(&a.spell()).unwrap(), a);
        }
    }

    #[test]
    fn arrival_parse_rejects_garbage() {
        assert!(Arrival::parse("uniform").is_err());
        assert!(Arrival::parse("periodic:0").is_err());
        assert!(Arrival::parse("periodic:x").is_err());
        assert!(Arrival::parse("poisson:-1").is_err());
        assert!(Arrival::parse("poisson:nan").is_err());
    }

    #[test]
    fn policy_parse_round_trips() {
        for s in ["greedy", "waitfull"] {
            let p = BatchPolicy::parse(s).expect(s);
            assert_eq!(p.spell(), s);
        }
        assert!(BatchPolicy::parse("lazy").is_err());
    }

    #[test]
    fn default_config_validates() {
        StreamConfig::default().validate().expect("default valid");
    }

    #[test]
    fn validate_rejects_degenerate_values() {
        let base = StreamConfig::default();
        for bad in [
            StreamConfig {
                requests: 0,
                ..base
            },
            StreamConfig { batch: 0, ..base },
            StreamConfig {
                dram_bytes_per_cycle: 0.0,
                ..base
            },
            StreamConfig {
                arrival: Arrival::Poisson { mean: 0.0 },
                ..base
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn cache_key_tracks_every_scenario_field() {
        let base = StreamConfig::default();
        let mut seen = vec![base.cache_key()];
        for cfg in [
            StreamConfig {
                requests: 128,
                ..base
            },
            StreamConfig { batch: 4, ..base },
            StreamConfig {
                arrival: Arrival::Periodic { period: 100_000 },
                ..base
            },
            StreamConfig {
                policy: BatchPolicy::WaitFull,
                ..base
            },
            StreamConfig {
                dram_bytes_per_cycle: 64.0,
                ..base
            },
        ] {
            let key = cfg.cache_key();
            assert!(!seen.contains(&key), "key collision for {cfg:?}");
            seen.push(key);
        }
        assert_eq!(base.cache_key(), StreamConfig::default().cache_key());
    }

    #[test]
    fn config_serde_round_trips() {
        let cfg = StreamConfig {
            requests: 64,
            batch: 8,
            arrival: Arrival::Poisson { mean: 90000.0 },
            policy: BatchPolicy::WaitFull,
            ..StreamConfig::default()
        };
        let v = serde::Serialize::to_value(&cfg);
        let back = <StreamConfig as serde::Deserialize>::from_value(&v).expect("round trip");
        assert_eq!(back, cfg);
    }
}
