//! Batched streaming-inference engine over any [`Accelerator`].
//!
//! Every scenario the rest of the workspace measures is one image
//! through one network. This crate adds the missing axis (ROADMAP item
//! 5a): a *stream* of inference requests arriving over time, serviced in
//! batches of `batch >= 1` by a single accelerator, with throughput
//! (img/s at the modeled clock), p50/p95/p99 tail latency, and
//! queue-depth statistics reported alongside the existing conserved
//! traffic/energy totals.
//!
//! The model has three deterministic stages:
//!
//! - [`gen`]: a seeded request generator. Request `r` of a stream over
//!   suite workload `W` with base seed `s` runs `W` rebuilt with seed
//!   `s + r` — the per-image activation-sparsity perturbation of the
//!   `nn` profiles (weights are deterministic, so only activation
//!   occupancy varies image to image, as in a deployed model). Arrival
//!   cycles come from a seeded arrival process ([`Arrival`]).
//! - batched execution: within a batch the *leader* pays the full
//!   single-inference cycle and weight-traffic cost; *followers* reuse
//!   the leader's DRAM-resident weights, so their weight traffic (and
//!   the DRAM cycles it would have taken at the configured bandwidth)
//!   is amortized away while activation traffic stays per-image.
//! - [`sched`]: a discrete-event FIFO scheduler that turns per-request
//!   single-inference results plus arrival times into a
//!   [`StreamMetrics`], conserving server time exactly
//!   (`busy + idle + formation == makespan`) and attributing every
//!   queued cycle to batch formation or server occupancy.
//!
//! The `batch = 1`, single-request, burst-arrival degenerate case
//! reproduces [`Accelerator::simulate`] bit for bit — locked by tests
//! here and golden-metric tests in `isosceles-bench`.
//!
//! # Examples
//!
//! ```
//! use isos_stream::{run_stream, StreamConfig};
//! use isosceles::IsoscelesConfig;
//!
//! let cfg = StreamConfig {
//!     requests: 4,
//!     batch: 2,
//!     ..StreamConfig::default()
//! };
//! let metrics = run_stream(&IsoscelesConfig::default(), "G58", 1, &cfg);
//! assert_eq!(metrics.requests.len(), 4);
//! assert_eq!(metrics.service_sum(), metrics.busy_cycles);
//! assert!(metrics.p99() >= metrics.p50());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod gen;
pub mod sched;

pub use config::{Arrival, BatchPolicy, StreamConfig};
pub use gen::{arrivals, request_seed};
pub use sched::{run_stream, run_stream_traced, schedule, schedule_traced};

// Re-exported so downstream crates name the result types from one place.
pub use isos_sim::metrics::{QueueStats, RequestSpan, StreamMetrics};

#[allow(unused_imports)]
use isosceles::accel::Accelerator;
