//! Deterministic request generation: per-request seeds and arrival
//! cycles.
//!
//! Everything here is a pure function of `(config, seed)`, so the same
//! stream scenario always produces a bit-identical request sequence —
//! the property the engine-level determinism tests lock down.

use crate::config::{Arrival, StreamConfig};
use isos_nn::models::{try_suite_workload, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Salt separating the arrival-process RNG stream from every other
/// consumer of the scenario seed.
const ARRIVAL_SALT: u64 = 0x5EED_0A44_11A1_0001;

/// Seed for request `index` of a stream with base seed `base`.
///
/// Request 0 uses the base seed itself, so a single-request stream
/// exercises exactly the canonical single-inference network and its
/// golden metrics.
pub fn request_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index)
}

/// Builds the network request `index` runs: the suite workload rebuilt
/// with [`request_seed`], i.e. the same pruned weights with a freshly
/// seeded activation-sparsity profile (per-image variation).
pub fn request_workload(id: &str, base: u64, index: u64) -> Option<Workload> {
    try_suite_workload(id, request_seed(base, index))
}

/// Arrival cycle of every request, non-decreasing, derived from the
/// scenario's arrival process and seed.
pub fn arrivals(cfg: &StreamConfig, seed: u64) -> Vec<u64> {
    let n = cfg.requests as usize;
    match cfg.arrival {
        Arrival::Burst => vec![0; n],
        Arrival::Periodic { period } => (0..cfg.requests).map(|i| i * period).collect(),
        Arrival::Poisson { mean } => {
            let mut rng = SmallRng::seed_from_u64(seed ^ ARRIVAL_SALT);
            let mut t = 0.0f64;
            (0..n)
                .map(|_| {
                    // gen_range(0.0..1.0) is in [0, 1); 1 - u is in
                    // (0, 1], so the log is finite (inverse-transform
                    // sampling of the exponential gap).
                    let u: f64 = rng.gen_range(0.0f64..1.0);
                    t += -(1.0 - u).ln() * mean;
                    t as u64
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchPolicy;

    fn cfg(requests: u64, arrival: Arrival) -> StreamConfig {
        StreamConfig {
            requests,
            batch: 1,
            arrival,
            policy: BatchPolicy::Greedy,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn burst_arrivals_are_all_zero() {
        assert_eq!(arrivals(&cfg(4, Arrival::Burst), 9), vec![0; 4]);
    }

    #[test]
    fn periodic_arrivals_are_evenly_spaced() {
        let a = arrivals(&cfg(4, Arrival::Periodic { period: 10 }), 9);
        assert_eq!(a, vec![0, 10, 20, 30]);
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_monotone() {
        let c = cfg(64, Arrival::Poisson { mean: 1000.0 });
        let a = arrivals(&c, 42);
        let b = arrivals(&c, 42);
        assert_eq!(a, b, "same seed must reproduce the stream");
        assert_ne!(a, arrivals(&c, 43), "different seed must perturb it");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // The empirical mean gap should be in the right ballpark.
        let mean_gap = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
        assert!(
            (250.0..4000.0).contains(&mean_gap),
            "mean gap {mean_gap} wildly off 1000"
        );
    }

    #[test]
    fn request_seed_zero_is_the_base_seed() {
        assert_eq!(request_seed(20230225, 0), 20230225);
        assert_ne!(request_seed(20230225, 1), 20230225);
    }

    #[test]
    fn request_workloads_vary_only_in_activations() {
        let a = request_workload("G58", 1, 0).expect("G58");
        let b = request_workload("G58", 1, 1).expect("G58");
        assert_eq!(a.id, b.id);
        // Weights are pruned deterministically; the seed only reseeds
        // activation occupancies.
        assert!((a.network.weight_sparsity() - b.network.weight_sparsity()).abs() < 1e-12);
        assert_ne!(a.network, b.network, "activation profiles must differ");
    }

    #[test]
    fn unknown_workload_is_none() {
        assert!(request_workload("X42", 1, 0).is_none());
    }
}
