//! The discrete-event stream scheduler: single server, FIFO queue,
//! batched dispatch.
//!
//! [`schedule`] is a pure function from per-request single-inference
//! results plus arrival cycles to a [`StreamMetrics`]; [`run_stream`] is
//! the serial reference driver that also builds the per-request networks
//! and simulates them. Callers that fan the per-request simulations out
//! over threads (`isosceles-bench`) call [`schedule`] on the collected
//! results and get bit-identical metrics, because scheduling itself is
//! single-threaded and deterministic.
//!
//! # Batch amortization
//!
//! Within a batch the first member (*leader*) pays its full
//! single-inference cost. Each *follower* reuses the weights the leader
//! already streamed in: its weight traffic drops to zero, its DRAM
//! energy activity drops by the same bytes, and its service time shrinks
//! by the cycles those bytes would have occupied the DRAM interface
//! (`ceil(weight_traffic / dram_bytes_per_cycle)`), floored at one
//! cycle. Activation traffic is per-image and is never amortized. This
//! is deliberately optimistic about weight residency (the HPIPE-style
//! best case); the DESIGN notes discuss the limitation.
//!
//! # Server-time conservation
//!
//! Every cycle of the makespan is attributed to exactly one of: `busy`
//! (servicing a request), `formation` (waiting for a fuller batch while
//! requests are queued), or `idle` (empty queue). Each request's queue
//! wait is likewise split into `formation_wait + busy_wait` — the
//! overlap of its queued interval with the server's formation and busy
//! segments — so span accounting and server accounting agree exactly.

use crate::config::{BatchPolicy, StreamConfig};
use crate::gen::{arrivals, request_seed, request_workload};
use isos_sim::metrics::{QueueStats, RequestSpan, RunMetrics, StreamMetrics};
use isos_trace::event::{StallKind, TraceEvent, UnitKind};
use isos_trace::sink::TraceSink;
use isosceles::accel::Accelerator;

/// What the server was doing over one timeline segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SegmentKind {
    /// Servicing a request.
    Busy,
    /// Waiting to form a fuller batch (queue non-empty).
    Formation,
    /// Empty queue, nothing to do.
    Idle,
}

/// One half-open `[t0, t1)` slice of the server timeline.
#[derive(Clone, Copy, Debug)]
struct Segment {
    t0: u64,
    t1: u64,
    kind: SegmentKind,
}

/// Server timeline: contiguous segments covering `[0, makespan)`.
#[derive(Debug, Default)]
struct Timeline {
    segs: Vec<Segment>,
}

impl Timeline {
    fn push(&mut self, t0: u64, t1: u64, kind: SegmentKind) {
        debug_assert!(t0 <= t1);
        if t1 > t0 {
            self.segs.push(Segment { t0, t1, kind });
        }
    }

    /// Total cycles of `kind` inside `[a, b)`.
    fn overlap(&self, a: u64, b: u64, kind: SegmentKind) -> u64 {
        self.segs
            .iter()
            .take_while(|s| s.t0 < b)
            .filter(|s| s.kind == kind)
            .map(|s| s.t1.min(b).saturating_sub(s.t0.max(a)))
            .sum()
    }

    fn total(&self, kind: SegmentKind) -> u64 {
        self.segs
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.t1 - s.t0)
            .sum()
    }
}

/// A follower's view of `full`: weight traffic (and the DRAM cycles and
/// energy it cost) amortized away by the batch leader's fetch.
fn amortize_follower(full: &RunMetrics, dram_bytes_per_cycle: f64) -> RunMetrics {
    let mut m = *full;
    let saved_cycles = (m.weight_traffic / dram_bytes_per_cycle).ceil() as u64;
    m.cycles = m.cycles.saturating_sub(saved_cycles).max(1);
    m.activity.dram_bytes = (m.activity.dram_bytes - m.weight_traffic).max(0.0);
    m.weight_traffic = 0.0;
    m
}

/// Schedules the stream and returns both the metrics and the server
/// timeline (the traced variant replays the timeline into the sink).
fn schedule_full(
    singles: &[RunMetrics],
    arrivals: &[u64],
    cfg: &StreamConfig,
) -> (StreamMetrics, Timeline) {
    assert_eq!(
        singles.len(),
        arrivals.len(),
        "one single-inference result per arrival"
    );
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be non-decreasing"
    );
    let n = singles.len();
    let batch = cfg.batch.max(1) as usize;

    let mut timeline = Timeline::default();
    let mut spans: Vec<RequestSpan> = Vec::with_capacity(n);
    let mut total = RunMetrics::default();
    let mut batches = 0u64;
    let mut t = 0u64; // server clock
    let mut next = 0usize; // first request not yet dispatched

    while next < n {
        // Idle until the head of the queue has arrived.
        if arrivals[next] > t {
            timeline.push(t, arrivals[next], SegmentKind::Idle);
            t = arrivals[next];
        }
        // How many requests are queued right now?
        let mut avail = 0;
        while next + avail < n && arrivals[next + avail] <= t {
            avail += 1;
        }
        // WaitFull: hold for a full batch while more requests are still
        // inbound; the hold is batch-formation time, not idleness,
        // because the queue is non-empty.
        if cfg.policy == BatchPolicy::WaitFull && avail < batch && next + avail < n {
            let want = (next + batch).min(n) - 1;
            let until = arrivals[want];
            if until > t {
                timeline.push(t, until, SegmentKind::Formation);
                t = until;
            }
            avail = 0;
            while next + avail < n && arrivals[next + avail] <= t {
                avail += 1;
            }
        }
        let take = avail.min(batch);
        debug_assert!(take >= 1);

        // Dispatch the batch: members run back to back, leader first.
        let dispatch = t;
        for (j, idx) in (next..next + take).enumerate() {
            let leader = j == 0;
            let m = if leader {
                singles[idx]
            } else {
                amortize_follower(&singles[idx], cfg.dram_bytes_per_cycle)
            };
            let start = t;
            let completion = start + m.cycles;
            spans.push(RequestSpan {
                index: idx as u64,
                arrival: arrivals[idx],
                start,
                completion,
                service: m.cycles,
                batch: batches,
                leader,
                // Filled in below once the timeline around this batch
                // is complete.
                formation_wait: 0,
                busy_wait: 0,
                metrics: m,
            });
            total.accumulate(&m);
            t = completion;
        }
        timeline.push(dispatch, t, SegmentKind::Busy);
        batches += 1;
        next += take;
    }

    // Attribute each request's queue wait to formation vs. occupancy.
    // A queued request implies a non-empty queue, so its waiting
    // interval never overlaps an idle segment; formation + busy overlap
    // covers it exactly.
    for s in &mut spans {
        s.formation_wait = timeline.overlap(s.arrival, s.start, SegmentKind::Formation);
        s.busy_wait = timeline.overlap(s.arrival, s.start, SegmentKind::Busy);
        debug_assert_eq!(s.formation_wait + s.busy_wait, s.queue_wait());
    }

    // Queue-depth statistics: +1 at each arrival, -1 as each request
    // enters service. Both event lists are already time-sorted (spans
    // start in FIFO order); merge them.
    let makespan = t;
    let mut queue = QueueStats::default();
    let mut depth = 0u64;
    let mut area = 0u128; // depth-cycles, exact
    let mut last = 0u64;
    let mut ai = 0usize;
    let mut di = 0usize; // over spans, in dispatch order (span order)
    while ai < n || di < n {
        // Dispatches at time X happen after arrivals at time X joined
        // the queue, so break ties toward arrivals.
        let ta = if ai < n { arrivals[ai] } else { u64::MAX };
        let td = if di < n { spans[di].start } else { u64::MAX };
        let now = ta.min(td);
        area += u128::from(depth) * u128::from(now - last);
        last = now;
        if ta <= td {
            depth += 1;
            ai += 1;
        } else {
            depth -= 1;
            di += 1;
        }
        queue.max_depth = queue.max_depth.max(depth);
    }
    debug_assert_eq!(depth, 0, "every request leaves the queue");
    if makespan > 0 {
        queue.mean_depth = area as f64 / makespan as f64;
    }

    let busy_cycles = timeline.total(SegmentKind::Busy);
    let idle_cycles = timeline.total(SegmentKind::Idle);
    let formation_cycles = timeline.total(SegmentKind::Formation);
    debug_assert_eq!(busy_cycles + idle_cycles + formation_cycles, makespan);
    total.cycles = makespan;

    (
        StreamMetrics {
            total,
            busy_cycles,
            idle_cycles,
            formation_cycles,
            batches,
            queue,
            requests: spans,
        },
        timeline,
    )
}

/// Streams `singles[i]` (the single-inference result of request `i`)
/// through the batched FIFO server and returns the stream metrics.
///
/// # Panics
///
/// Panics if `singles` and `arrivals` differ in length or `arrivals` is
/// not sorted.
pub fn schedule(singles: &[RunMetrics], arrivals: &[u64], cfg: &StreamConfig) -> StreamMetrics {
    schedule_full(singles, arrivals, cfg).0
}

/// [`schedule`], additionally replaying the run into a trace sink.
///
/// Each request gets a `Layer` unit whose single `Compute` event spans
/// `[arrival, completion)`: `busy` is its service time and the queued
/// remainder is attributed to the fixed stall taxonomy — batch-formation
/// waits as `InputStarved` (upstream batch not formed yet), server
/// occupancy as `OutputBlocked` (the shared server exerting
/// backpressure). A `Group` unit named `stream` carries the server
/// timeline with the same mapping, so `busy + stalls == cycles` holds
/// for every emitted event.
pub fn schedule_traced(
    singles: &[RunMetrics],
    arrivals: &[u64],
    cfg: &StreamConfig,
    sink: &mut dyn TraceSink,
) -> StreamMetrics {
    let (metrics, timeline) = schedule_full(singles, arrivals, cfg);
    if !sink.enabled() {
        return metrics;
    }
    let server = sink.unit("stream", UnitKind::Group);
    sink.hint_events(timeline.segs.len() + metrics.requests.len());
    for seg in &timeline.segs {
        let cycles = seg.t1 - seg.t0;
        let mut busy = 0.0;
        let mut stalls = [0.0f64; 4];
        match seg.kind {
            SegmentKind::Busy => busy = cycles as f64,
            SegmentKind::Formation | SegmentKind::Idle => {
                stalls[StallKind::InputStarved.index()] = cycles as f64;
            }
        }
        sink.emit(TraceEvent::Compute {
            unit: server,
            t: seg.t0,
            cycles,
            busy,
            stalls,
        });
    }
    for span in &metrics.requests {
        let unit = sink.unit(&format!("req{}", span.index), UnitKind::Layer);
        let mut stalls = [0.0f64; 4];
        stalls[StallKind::InputStarved.index()] = span.formation_wait as f64;
        stalls[StallKind::OutputBlocked.index()] = span.busy_wait as f64;
        sink.emit(TraceEvent::Compute {
            unit,
            t: span.arrival,
            cycles: span.latency(),
            busy: span.service as f64,
            stalls,
        });
    }
    metrics
}

/// Simulates every request of the stream serially and schedules it: the
/// reference implementation (and the convenient one-call entry point
/// for small streams).
///
/// # Panics
///
/// Panics if `workload` is not a suite id or `cfg` fails validation.
pub fn run_stream(
    accel: &dyn Accelerator,
    workload: &str,
    seed: u64,
    cfg: &StreamConfig,
) -> StreamMetrics {
    run_stream_traced(accel, workload, seed, cfg, &mut isos_trace::sink::NullSink)
}

/// [`run_stream`] with trace output (see [`schedule_traced`]).
///
/// # Panics
///
/// Panics if `workload` is not a suite id or `cfg` fails validation.
pub fn run_stream_traced(
    accel: &dyn Accelerator,
    workload: &str,
    seed: u64,
    cfg: &StreamConfig,
    sink: &mut dyn TraceSink,
) -> StreamMetrics {
    cfg.validate()
        .unwrap_or_else(|e| panic!("bad stream config: {e}"));
    let singles: Vec<RunMetrics> = (0..cfg.requests)
        .map(|r| {
            let w = request_workload(workload, seed, r)
                .unwrap_or_else(|| panic!("unknown workload id {workload:?}"));
            accel.simulate(&w.network, request_seed(seed, r)).total
        })
        .collect();
    schedule_traced(&singles, &arrivals(cfg, seed), cfg, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arrival;
    use isos_trace::sink::EventBuffer;
    use isosceles::IsoscelesConfig;

    /// A synthetic single-inference result with the given cycles and
    /// weight traffic (DRAM activity covering it).
    fn single(cycles: u64, weight: f64) -> RunMetrics {
        let mut m = RunMetrics {
            cycles,
            weight_traffic: weight,
            act_traffic: 100.0,
            effectual_macs: 1000.0,
            ..Default::default()
        };
        m.activity.dram_bytes = weight + 100.0;
        m
    }

    fn cfg(batch: u64, arrival: Arrival, policy: BatchPolicy) -> StreamConfig {
        StreamConfig {
            requests: 0, // filled by callers that generate arrivals
            batch,
            arrival,
            policy,
            ..StreamConfig::default()
        }
    }

    fn check_conservation(s: &StreamMetrics) {
        assert_eq!(s.service_sum(), s.busy_cycles, "span/busy conservation");
        assert_eq!(
            s.busy_cycles + s.idle_cycles + s.formation_cycles,
            s.total.cycles,
            "server-time conservation"
        );
        for r in &s.requests {
            assert_eq!(r.completion - r.start, r.service);
            assert_eq!(r.formation_wait + r.busy_wait, r.queue_wait());
        }
    }

    #[test]
    fn burst_batch1_is_back_to_back_service() {
        let singles = vec![single(100, 0.0), single(50, 0.0), single(25, 0.0)];
        let c = cfg(1, Arrival::Burst, BatchPolicy::Greedy);
        let s = schedule(&singles, &[0, 0, 0], &c);
        check_conservation(&s);
        assert_eq!(s.total.cycles, 175);
        assert_eq!(s.busy_cycles, 175);
        assert_eq!(s.idle_cycles, 0);
        assert_eq!(s.formation_cycles, 0);
        assert_eq!(s.batches, 3);
        assert_eq!(s.queue.max_depth, 3);
        let lat: Vec<u64> = s.requests.iter().map(|r| r.latency()).collect();
        assert_eq!(lat, vec![100, 150, 175]);
    }

    #[test]
    fn single_request_stream_is_the_degenerate_case() {
        let m = single(1000, 400.0);
        let c = cfg(1, Arrival::Burst, BatchPolicy::Greedy);
        let s = schedule(&[m], &[0], &c);
        check_conservation(&s);
        // The stream total is exactly the single-inference result.
        assert_eq!(s.total, m);
        assert_eq!(s.requests[0].metrics, m);
        assert!(s.requests[0].leader);
        assert_eq!(s.p50(), 1000);
        assert_eq!(s.p99(), 1000);
    }

    #[test]
    fn followers_amortize_weight_traffic_and_cycles() {
        // weight 256 B at 128 B/cyc = 2 cycles saved per follower.
        let singles = vec![single(100, 256.0); 4];
        let c = cfg(4, Arrival::Burst, BatchPolicy::Greedy);
        let s = schedule(&singles, &[0; 4], &c);
        check_conservation(&s);
        assert_eq!(s.batches, 1);
        assert!(s.requests[0].leader);
        assert_eq!(s.requests[0].service, 100);
        assert_eq!(s.requests[0].metrics.weight_traffic, 256.0);
        for r in &s.requests[1..] {
            assert!(!r.leader);
            assert_eq!(r.service, 98);
            assert_eq!(r.metrics.weight_traffic, 0.0);
            assert_eq!(r.metrics.act_traffic, 100.0, "activations stay per-image");
            assert_eq!(r.metrics.activity.dram_bytes, 100.0);
        }
        assert_eq!(s.total.cycles, 100 + 3 * 98);
        assert_eq!(s.total.weight_traffic, 256.0);
        assert_eq!(s.total.act_traffic, 400.0);
    }

    #[test]
    fn follower_service_is_floored_at_one_cycle() {
        let m = single(2, 100_000.0);
        let c = cfg(2, Arrival::Burst, BatchPolicy::Greedy);
        let s = schedule(&[m, m], &[0, 0], &c);
        check_conservation(&s);
        assert_eq!(s.requests[1].service, 1);
    }

    #[test]
    fn greedy_dispatches_underfull_batches() {
        // Second request arrives while the first is in service: greedy
        // starts request 0 alone, then services request 1 alone.
        let singles = vec![single(100, 0.0), single(100, 0.0)];
        let c = cfg(2, Arrival::Periodic { period: 10 }, BatchPolicy::Greedy);
        let s = schedule(&singles, &[0, 10], &c);
        check_conservation(&s);
        assert_eq!(s.batches, 2);
        assert!(s.requests.iter().all(|r| r.leader));
        assert_eq!(s.requests[1].busy_wait, 90);
        assert_eq!(s.requests[1].formation_wait, 0);
    }

    #[test]
    fn waitfull_accounts_formation_time() {
        let singles = vec![single(100, 0.0), single(100, 0.0)];
        let c = cfg(2, Arrival::Periodic { period: 40 }, BatchPolicy::WaitFull);
        let s = schedule(&singles, &[0, 40], &c);
        check_conservation(&s);
        assert_eq!(s.batches, 1);
        assert_eq!(s.formation_cycles, 40);
        assert_eq!(s.requests[0].formation_wait, 40);
        assert_eq!(s.requests[0].busy_wait, 0);
        // The follower queues behind the leader's service.
        assert!(!s.requests[1].leader);
        assert_eq!(s.requests[1].formation_wait, 0);
        assert_eq!(s.requests[1].busy_wait, 100);
    }

    #[test]
    fn waitfull_drains_the_tail_without_deadlock() {
        // 3 requests, batch 2: the final odd request must still run.
        let singles = vec![single(10, 0.0); 3];
        let c = cfg(2, Arrival::Burst, BatchPolicy::WaitFull);
        let s = schedule(&singles, &[0, 0, 0], &c);
        check_conservation(&s);
        assert_eq!(s.requests.len(), 3);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn idle_gaps_are_accounted() {
        let singles = vec![single(10, 0.0), single(10, 0.0)];
        let c = cfg(1, Arrival::Periodic { period: 100 }, BatchPolicy::Greedy);
        let s = schedule(&singles, &[0, 100], &c);
        check_conservation(&s);
        assert_eq!(s.idle_cycles, 90);
        assert_eq!(s.total.cycles, 110);
        assert!(s.throughput_imgs_per_cycle() > 0.0);
        assert_eq!(s.queue.max_depth, 1);
    }

    #[test]
    fn traced_run_conserves_cycles_per_event() {
        let singles = vec![single(100, 256.0); 5];
        let c = cfg(2, Arrival::Periodic { period: 30 }, BatchPolicy::WaitFull);
        let arr = vec![0, 30, 60, 90, 120];
        let mut buf = EventBuffer::new();
        let s = schedule_traced(&singles, &arr, &c, &mut buf);
        check_conservation(&s);
        assert!(!buf.is_empty());
        let mut server_busy = 0.0;
        for e in buf.events() {
            if let TraceEvent::Compute {
                unit,
                cycles,
                busy,
                stalls,
                ..
            } = e
            {
                let sum: f64 = busy + stalls.iter().sum::<f64>();
                assert_eq!(sum, *cycles as f64, "event conserves its interval");
                if buf.unit_name(*unit) == "stream" {
                    server_busy += busy;
                }
            }
        }
        assert_eq!(server_busy, s.busy_cycles as f64);
        // One span event per request on top of the server timeline.
        let req_units = buf
            .units()
            .iter()
            .filter(|u| u.kind == UnitKind::Layer)
            .count();
        assert_eq!(req_units, 5);
    }

    #[test]
    fn run_stream_batch1_burst_matches_accumulated_simulate() {
        let accel = IsoscelesConfig::default();
        let c = StreamConfig {
            requests: 2,
            batch: 1,
            ..StreamConfig::default()
        };
        let s = run_stream(&accel, "G58", 7, &c);
        check_conservation(&s);
        let mut expect = RunMetrics::default();
        for r in 0..2 {
            let w = request_workload("G58", 7, r).unwrap();
            expect.accumulate(&accel.simulate(&w.network, request_seed(7, r)).total);
        }
        assert_eq!(s.total, expect, "burst batch=1 == sequential inference");
    }

    #[test]
    fn batching_helps_throughput_without_hurting_energy_conservation() {
        let accel = IsoscelesConfig::default();
        let base = StreamConfig {
            requests: 4,
            ..StreamConfig::default()
        };
        let unbatched = run_stream(&accel, "G58", 7, &base);
        let batched = run_stream(&accel, "G58", 7, &StreamConfig { batch: 4, ..base });
        check_conservation(&unbatched);
        check_conservation(&batched);
        assert!(batched.total.cycles < unbatched.total.cycles);
        assert!(batched.total.weight_traffic < unbatched.total.weight_traffic);
        assert_eq!(
            batched.total.act_traffic, unbatched.total.act_traffic,
            "activation traffic is per-image"
        );
        assert!(batched.throughput_imgs_per_cycle() > unbatched.throughput_imgs_per_cycle());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn run_stream_rejects_unknown_workloads() {
        run_stream(
            &IsoscelesConfig::default(),
            "X42",
            1,
            &StreamConfig {
                requests: 1,
                ..StreamConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "bad stream config")]
    fn run_stream_rejects_invalid_config() {
        run_stream(
            &IsoscelesConfig::default(),
            "G58",
            1,
            &StreamConfig {
                requests: 0,
                ..StreamConfig::default()
            },
        );
    }
}
