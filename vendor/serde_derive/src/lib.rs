//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! The build environment has no crates.io access, so this proc-macro
//! crate re-implements the two derives the workspace uses, without
//! `syn`/`quote`: the item is tokenized by hand and the impls are
//! emitted as source strings. Supported shapes (everything the
//! workspace derives on):
//!
//! - structs with named fields (including empty ones);
//! - tuple structs (newtypes serialize transparently);
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   like upstream serde's default representation).
//!
//! Generic types and serde attributes (`#[serde(...)]`) are not
//! supported and produce a compile error, keeping misuse loud.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

/// Field layout of a struct or enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past `#[...]` attributes and doc comments.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len()
        && is_punct(&toks[i], '#')
        && matches!(&toks[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len()
            && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type (or expression) until a top-level comma,
/// tracking `<...>` nesting so `Vec<(A, B)>` and `BTreeMap<K, V>` split
/// correctly. Returns the index just past the comma (or `toks.len()`).
fn skip_to_next_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i64;
    while i < toks.len() {
        if is_punct(&toks[i], '<') {
            angle += 1;
        } else if is_punct(&toks[i], '>') {
            angle -= 1;
        } else if is_punct(&toks[i], ',') && angle == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Parses `{ field: Ty, ... }` contents into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive: expected field name, got {}", toks[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(
            i < toks.len() && is_punct(&toks[i], ':'),
            "serde_derive: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i = skip_to_next_comma(&toks, i + 1);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_to_next_comma(&toks, i);
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive: expected variant name, got {}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push((name, shape));
        // Skip optional discriminant and the separating comma.
        i = skip_to_next_comma(&toks, i);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!("serde_derive: only structs and enums are supported");
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde_derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    assert!(
        i >= toks.len() || !is_punct(&toks[i], '<'),
        "serde_derive: generic types are not supported (type `{name}`)"
    );
    if is_enum {
        let TokenTree::Group(g) = &toks[i] else {
            panic!("serde_derive: expected enum body");
        };
        Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            _ => Item::Struct {
                name,
                shape: Shape::Unit,
            },
        }
    }
}

/// Derives `serde::Serialize` (vendored JSON data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::json::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!(
                        "::serde::json::Value::Arr(::std::vec![{}])",
                        elems.join(", ")
                    )
                }
                Shape::Named(fields) => obj_literal(&fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, shape) in &variants {
                match shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::json::Value::Arr(::std::vec![{}])",
                                elems.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::json::Value::tagged(\"{v}\", {inner}),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let inner = obj_literal(fields, "");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::json::Value::tagged(\"{v}\", {inner}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::json::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive: generated impl parses")
}

/// `Value::Obj` literal from field names; `prefix` is `self.` for
/// structs and empty for destructured enum bindings (which borrow).
fn obj_literal(fields: &[String], prefix: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            let amp = if prefix.is_empty() { "" } else { "&" };
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({amp}{prefix}{f}))")
        })
        .collect();
    format!(
        "::serde::json::Value::Obj(::std::vec![{}])",
        pairs.join(", ")
    )
}

/// Derives `serde::Deserialize` (vendored JSON data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            deserialize_impl(&name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, shape) in &variants {
                match shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    Shape::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!("{name}::{v}(::serde::Deserialize::from_value(inner)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(inner.index({i})?)?")
                                })
                                .collect();
                            format!("{name}::{v}({})", elems.join(", "))
                        };
                        tagged_arms
                            .push_str(&format!("\"{v}\" => ::std::result::Result::Ok({ctor}),\n"));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let body = format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                     match s {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 let (tag, inner) = v.as_tagged()?;\n\
                 match tag {{\n\
                     {tagged_arms}\n\
                     other => ::std::result::Result::Err(::serde::json::Error::new(\
                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}"
            );
            deserialize_impl(&name, &body)
        }
    };
    out.parse().expect("serde_derive: generated impl parses")
}

fn deserialize_impl(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::json::Value) \
                 -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
