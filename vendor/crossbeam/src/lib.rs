//! Offline vendored stand-in for `crossbeam`.
//!
//! The build environment has no crates.io access, so this crate
//! provides the crossbeam API surface the suite engine uses — scoped
//! threads ([`thread::scope`]) and a simple MPMC channel
//! ([`channel`]) — implemented on top of `std::thread::scope` and a
//! mutex-guarded queue. Semantics match what the engine relies on:
//! scoped borrows of non-`'static` data, panic propagation as an
//! `Err` from `scope`, and channel senders that disconnect on drop.

#![warn(missing_docs)]

/// Scoped threads (upstream: `crossbeam::thread`).
pub mod thread {
    use std::thread::Result as ThreadResult;

    /// Handle for spawning threads tied to the enclosing scope.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// again (crossbeam's signature) for nested spawns.
        pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawned threads can be
    /// created; all spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam: returns `Err` with the first panic payload
    /// if any unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates child panics by resuming the
        // unwind in the parent; catch it to match crossbeam's Result.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// MPMC channels (upstream: `crossbeam::channel`), minimal unbounded
/// variant.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half; clone freely.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; clone freely (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Receiver::recv`] once the channel is empty
    /// and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.0.queue.lock().expect("channel poisoned");
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a value; never blocks (unbounded).
        pub fn send(&self, value: T) {
            self.0
                .queue
                .lock()
                .expect("channel poisoned")
                .items
                .push_back(value);
            self.0.ready.notify_one();
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().expect("channel poisoned");
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).expect("channel poisoned");
            }
        }

        /// Iterates until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len() as i32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn scope_surfaces_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_fans_out_across_workers() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i);
        }
        drop(tx);
        let total: u32 = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().sum::<u32>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..100).sum());
    }
}
