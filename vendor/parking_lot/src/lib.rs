//! Offline vendored stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free API (`lock()` returns the guard directly). A poisoned
//! std lock — a thread panicked while holding it — panics here too,
//! which matches how parking_lot users treat that situation.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (upstream: `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// A reader-writer lock (upstream: `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(7u32);
        let (a, b) = (l.read(), l.read());
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
