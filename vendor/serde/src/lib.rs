//! Offline vendored stand-in for `serde` (+ `serde_json`).
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of serde the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on concrete structs/enums, plus a JSON module
//! ([`json`]) playing the role of `serde_json` for the suite engine's
//! on-disk result cache and the exporters.
//!
//! Unlike upstream serde there is no generic `Serializer`/`Deserializer`
//! data model: [`Serialize`] converts directly into a [`json::Value`]
//! tree and [`Deserialize`] reads one back. That is all the workspace
//! needs, and it keeps the vendored surface tiny and auditable.

#![warn(missing_docs)]

// The derive macros emit absolute `::serde::` paths; make those resolve
// inside this crate's own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Types convertible into a [`json::Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> json::Value;
}

/// Types reconstructible from a [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`json::Error`] naming the first mismatch encountered.
    fn from_value(v: &json::Value) -> Result<Self, json::Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n)
                    .map_err(|_| json::Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n)
                    .map_err(|_| json::Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> json::Value {
        json::Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::Error::new(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_arr()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(x) => x.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let items = v.as_arr()?;
        if items.len() != N {
            return Err(json::Error::new(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        Ok(<[T; N]>::try_from(vec).expect("length checked"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> json::Value {
        // Keys may be non-string (e.g. coordinate tuples), so maps
        // serialize as arrays of [key, value] pairs.
        json::Value::Arr(
            self.iter()
                .map(|(k, v)| json::Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_arr()?
            .iter()
            .map(|pair| {
                Ok((
                    K::from_value(pair.index(0)?)?,
                    V::from_value(pair.index(1)?)?,
                ))
            })
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> json::Value {
                json::Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                Ok(($($t::from_value(v.index($n)?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::{json, Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        x: u64,
        y: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        name: String,
        items: Vec<(String, Inner)>,
        flag: bool,
        opt: Option<u32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Newtype(String),
        Struct { a: usize, b: f32 },
    }

    #[test]
    fn struct_roundtrip() {
        let v = Outer {
            name: "r96".into(),
            items: vec![("g".into(), Inner { x: 7, y: -0.25 })],
            flag: true,
            opt: None,
        };
        let s = json::to_string(&v);
        let back: Outer = json::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn enum_roundtrip_all_shapes() {
        for k in [
            Kind::Unit,
            Kind::Newtype("abc \"quoted\" \n".into()),
            Kind::Struct { a: 3, b: 0.5 },
        ] {
            let s = json::to_string(&k);
            let back: Kind = json::from_str(&s).unwrap();
            assert_eq!(back, k);
        }
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-17, 0.0, 12345.678901234567] {
            let s = json::to_string(&x);
            let back: f64 = json::from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn missing_field_is_an_error() {
        let r: Result<Inner, _> = json::from_str("{\"x\": 3}");
        assert!(r.is_err());
    }

    #[test]
    fn btreemap_with_tuple_keys_roundtrips() {
        let mut m = std::collections::BTreeMap::new();
        m.insert((1u16, 2u16, 3u16), 1.5f32);
        m.insert((9u16, 0u16, 0u16), -2.0f32);
        let s = json::to_string(&m);
        let back: std::collections::BTreeMap<(u16, u16, u16), f32> = json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
