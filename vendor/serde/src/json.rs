//! Minimal JSON tree, printer, and parser (the `serde_json` role).
//!
//! Numbers keep their integer/float distinction so `u64` cycle counts
//! round-trip exactly; floats print with Rust's shortest round-trip
//! formatting, so a parse of the printed form recovers the identical
//! bits. Non-finite floats serialize as `null` (JSON has no NaN).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or any signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// Error produced by parsing or by typed extraction.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Builds the externally-tagged enum encoding `{"tag": inner}`.
    pub fn tagged(tag: &str, inner: Value) -> Value {
        Value::Obj(vec![(tag.to_string(), inner)])
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Indexes into an array.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an array or the index is out of bounds.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Arr(items) => items
                .get(i)
                .ok_or_else(|| Error::new(format!("index {i} out of bounds ({})", items.len()))),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Destructures the externally-tagged enum encoding.
    ///
    /// # Errors
    ///
    /// Errors unless `self` is a single-key object.
    pub fn as_tagged(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
            other => Err(Error::new(format!(
                "expected single-key variant object, got {}",
                other.kind()
            ))),
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers widen; `null` reads as NaN,
    /// mirroring the NaN-to-`null` serialization).
    ///
    /// # Errors
    ///
    /// Errors if `self` is not numeric or `null`.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }

    /// Integer extraction as `u64`.
    ///
    /// # Errors
    ///
    /// Errors on non-integers and negative values.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::new(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Integer extraction as `i64`.
    ///
    /// # Errors
    ///
    /// Errors on non-integers and out-of-range values.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(n) => Ok(*n),
            Value::U64(n) => {
                i64::try_from(*n).map_err(|_| Error::new(format!("{n} out of range for i64")))
            }
            other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Bool extraction.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not a bool.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// Array extraction.
    ///
    /// # Errors
    ///
    /// Errors if `self` is not an array.
    pub fn as_arr(&self) -> Result<&[Value], Error> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a `.0` on integral floats, so the
                    // value re-parses as a float, not an integer.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a value to compact JSON.
pub fn to_string<T: crate::Serialize + ?Sized>(value: &T) -> String {
    value.to_value().render()
}

/// Parses JSON text and deserializes a `T` from it.
///
/// # Errors
///
/// Errors on malformed JSON or a tree that does not match `T`.
pub fn from_str<T: crate::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Errors on malformed JSON or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {}",
            c as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::{parse, Value};

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, -2, 3.5, null, true], "b": {"c": "d\n"}}"#).unwrap();
        assert_eq!(v.field("a").unwrap().index(1).unwrap(), &Value::I64(-2));
        assert_eq!(
            v.field("b").unwrap().field("c").unwrap().as_str(),
            Some("d\n")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn render_parse_roundtrip() {
        let v = Value::Obj(vec![
            (
                "k".into(),
                Value::Arr(vec![Value::U64(u64::MAX), Value::F64(0.1)]),
            ),
            ("s".into(), Value::Str("a\"b\\c\u{1}".into())),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn large_u64_is_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64().unwrap(), u64::MAX);
    }
}
