//! Offline vendored stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate
//! provides the macro/API shape the workspace's benches use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups, [`black_box`], [`BenchmarkId`]) backed by a
//! simple best-of-N wall-clock timer instead of criterion's
//! statistical machinery. Output is one line per benchmark:
//!
//! ```text
//! bench csf/from_dense/d0.05 ... best 12.3µs over 20 iters
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Identifier combining a function name and a parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    best: Duration,
}

impl Bencher {
    /// Times `f`, keeping the best (minimum) duration over the sample
    /// count configured on the group.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside timing.
        black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

fn run_one(name: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        best: Duration::MAX,
    };
    let wall = Instant::now();
    f(&mut b);
    if b.best == Duration::MAX {
        println!(
            "bench {name} ... completed in {:.1?} (no iter() call)",
            wall.elapsed()
        );
    } else {
        println!("bench {name} ... best {:.3?} over {} iters", b.best, iters);
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            iters: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured-iteration count (upstream: target sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).clamp(1, 1000);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn harness_runs_every_closure() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
