//! Strategies: composable descriptions of how to sample random values.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of type `Self::Value`.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased strategy (upstream: `BoxedStrategy`).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(u8, u16, u32, u64, usize, f32, f64);

/// Each element samples its own strategy (upstream: `Vec<S>` is a
/// strategy for `Vec<S::Value>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let s = (1usize..5, 0.0f64..1.0, 7u32..=7);
        for _ in 0..200 {
            let (a, b, c) = s.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = TestRng::for_test("flat_map");
        let s = (2usize..6).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n));
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn vec_of_boxed_strategies_is_a_strategy() {
        let mut rng = TestRng::for_test("vec_boxed");
        let coords: Vec<BoxedStrategy<u32>> = vec![(0u32..3).boxed(), (10u32..13).boxed()];
        for _ in 0..50 {
            let v = coords.sample(&mut rng);
            assert!(v[0] < 3 && (10..13).contains(&v[1]));
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(vec![1, 2]).sample(&mut rng), vec![1, 2]);
    }
}
