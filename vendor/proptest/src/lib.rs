//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the proptest API surface the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`boxed`, range and tuple and collection
//! strategies, [`strategy::Just`], and the `prop_assert!` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs'
//!   debug representation instead of a minimized counterexample.
//! - **Deterministic seeding.** Cases derive from a fixed per-test
//!   seed (hash of the test name), so runs are reproducible and
//!   failures are stable across CI runs.

#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// `prop::` alias target, mirroring `proptest::prelude::prop`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs named property-test functions over sampled inputs.
///
/// Supports the subset of upstream syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in prop::collection::vec(0f64..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),* $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest `{}`: too many rejected cases ({} attempts, {} accepted)",
                    stringify!($name), attempts, accepted,
                );
                // Described before the body runs, which may consume the
                // inputs (there is no shrinking, so this is the only
                // counterexample report a failure gets). Samples land in a
                // temporary first because the binding may be a pattern
                // (e.g. `(h, w, c) in ...`) that destructures the value.
                let mut described = ::std::string::String::new();
                $(
                    let sampled = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    described.push_str(&format!("{} = {:?}; ", stringify!($arg), &sampled));
                    let $arg = sampled;
                )*
                let described = described;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed: {}\ninputs: {}",
                            stringify!($name), msg, described,
                        );
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (resampled without counting as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
