//! Test-runner plumbing: configuration, RNG, and case outcomes.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the vendored runner keeps the
        // simulator-heavy properties fast while still sweeping shapes.
        Self { cases: 48 }
    }
}

/// Deterministic per-test RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds from the test name (FNV-1a), so each property gets a
    /// stable but distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Outcome of a single property case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions failed; resample without penalty.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}
