//! `Option<T>` strategies (upstream: `proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing `Option<S::Value>`; see [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        // Decide Some/None first so the inner strategy only consumes
        // randomness when a value is actually produced.
        if rng.gen_bool(self.some_probability) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

/// Produces `Some` of the inner strategy's value half the time, `None`
/// otherwise (upstream's default probability).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.5, inner)
}

/// Produces `Some` with probability `some_probability`.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        some_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn of_mixes_some_and_none() {
        let strat = of(0u32..100);
        let mut rng = TestRng::for_test("of_mixes_some_and_none");
        let samples: Vec<Option<u32>> = (0..200).map(|_| strat.sample(&mut rng)).collect();
        let somes = samples.iter().filter(|s| s.is_some()).count();
        assert!((50..150).contains(&somes), "somes {somes}");
        assert!(samples.iter().flatten().all(|&v| v < 100));
    }

    #[test]
    fn weighted_extremes() {
        let mut rng = TestRng::for_test("weighted_extremes");
        let never = weighted(0.0, 0u32..10);
        let always = weighted(1.0, 0u32..10);
        for _ in 0..50 {
            assert!(never.sample(&mut rng).is_none());
            assert!(always.sample(&mut rng).is_some());
        }
    }
}
