//! Collection strategies (upstream: `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive length bounds for sampled collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Samples vectors whose length falls in `size`, each element drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_follow_size_range() {
        let mut rng = TestRng::for_test("lengths");
        let s = vec(0u8..5, 1..=4);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::for_test("exact");
        let s = vec(0u8..5, 3usize);
        assert_eq!(s.sample(&mut rng).len(), 3);
    }
}
