//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`]. The generator core is
//! xoshiro256** seeded through SplitMix64 — deterministic across runs,
//! platforms, and thread schedules, which the suite engine's cache keys
//! and the serial-vs-parallel determinism guarantee rely on.
//!
//! This is NOT a cryptographic RNG and makes no attempt to match the
//! upstream crate's value streams; it only matches the API shape.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Trait for seedable generators (upstream: `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling support for range types passed to [`Rng::gen_range`].
///
/// The element type is an associated type (not a trait parameter, as
/// upstream has it) so that float-literal ranges like `-0.1..0.1`
/// resolve through the normal `{float}` fallback instead of leaving an
/// unconstrained type parameter behind.
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draws one value uniformly from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (upstream: `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Generator implementations (upstream: `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the vendored stand-in uses the same core for `StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(5u32..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
