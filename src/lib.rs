//! Umbrella crate for the ISOSceles reproduction workspace.
//!
//! This package hosts the cross-crate examples (`examples/`) and
//! integration tests (`tests/`); the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! - [`isos_tensor`]: CSF tensors, mergers, bitmask vectors;
//! - [`isos_nn`]: the CNN model zoo, pruning, golden reference;
//! - [`isos_sim`]: DRAM/SRAM/queue models, energy, area;
//! - [`isosceles`]: the IS-OS dataflow and the accelerator model;
//! - [`isos_baselines`]: SparTen(+GoSPA) and Fused-Layer.

pub use isos_baselines;
pub use isos_nn;
pub use isos_sim;
pub use isos_tensor;
pub use isosceles;
